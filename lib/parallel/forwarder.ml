(** Batched event forwarding over the {!Spsc} ring (paper §2.1); see
    the interface for the protocol.

    A ring slot carries a [batch] record — a backing array plus a fill
    length — rather than a bare array, so a partial flush (the trailing
    batch at {!close}) hands the consumer its length instead of paying
    an [Array.sub] copy.  Drained batch records come back to the
    producer over a second, never-blocking {!Spsc} ring (the free
    list), so in steady state the forwarder allocates nothing per
    batch: the backing arrays cycle producer → consumer → producer.
    A recycled array keeps its element references until overwritten,
    bounded by [(queue_capacity + 2) * batch_size] elements.

    The channel is polymorphic in the element type: the two-domain
    runtime forwards {!Dift_vm.Event.exec} records, and the sharded
    runtime ({!Parallel.run_sharded}) reuses the same channel for each
    shard's inbound event ring. *)

type 'a batch = {
  mutable data : 'a array;  (** [[||]] until the first element *)
  mutable len : int;
  mutable weight : int;
      (** logical events carried: [len] for plain element streams,
          the sum of {!add_n} weights when each element is itself an
          encoded multi-event batch (the de-boxed codec) — all event
          accounting (drops, discards, consumption) is in weights *)
}

type 'a t = {
  ring : 'a batch Spsc.t;
  free : 'a batch Spsc.t;  (** drained records coming back for reuse *)
  batch_size : int;
  no_batch : 'a batch;
      (** the no-open-batch marker: physically unique per channel,
          never pushed *)
  mutable cur : 'a batch;  (** [no_batch] when no batch is open *)
  mutable events : int;
  mutable batches : int;  (** batches actually enqueued on the ring *)
  mutable dropped_batches : int;
      (** producer-side losses: post-abort pushes and injected push
          failures (written only by the producer domain) *)
  mutable dropped_events : int;
  mutable discarded_batches : int;
      (** consumer-side losses: batches popped but not processed
          (injected pop failures and the post-abort sweep; written
          only by the consumer) *)
  mutable discarded_events : int;
  mutable consumed_batches : int;
      (** batches fully processed by {!drain} (written only by the
          consumer) *)
  mutable consumed_events : int;
  chaos : Chaos.inst option;
      (** fault-injection seam; [None] is the direct Spsc path *)
  chaos_free : Chaos.inst option;
      (** fault-injection seam on the free-list ring (namespace
          [ring.free.<ns>], targeted rules only): recycling is
          load-bearing for the codec's preallocated batches, so its
          degradation legs are schedulable too.  Free-ring faults
          never lose events — a failed pop allocates fresh, a failed
          push lets the record fall to the GC. *)
  occupancy : Dift_obs.Registry.histogram option;
      (** elements per pushed batch, when observability is on *)
  trace : Dift_obs.Trace.t option;
      (** execution timeline: enqueue/stall and dequeue/wait spans
          plus the ring-occupancy counter track *)
  flight : Dift_obs.Flight.t option;
      (** flight recorder: one bounded event per channel op on the
          acting domain's ring *)
  f_ns : string;  (** metric namespace, doubles as the flight category *)
  push_prog : Dift_obs.Progress.leg option;
      (** [<ns>.push]: armed while parked on a full ring, ticked per
          delivered batch *)
  pop_prog : Dift_obs.Progress.leg option;
      (** [<ns>.pop]: armed while parked on an empty ring, ticked per
          consumed batch *)
}

(* Power-of-two occupancy buckets up to the batch size: a full batch
   lands in the last real bucket, so the overflow bucket staying at
   zero is itself an invariant check. *)
let occupancy_buckets batch_size =
  let rec up acc b = if b >= batch_size then List.rev (batch_size :: acc)
    else up (b :: acc) (b * 2)
  in
  up [] 1

let create ?obs ?trace ?flight ?chaos ?progress ?(escalate = false)
    ?(ns = "parallel") ~queue_capacity ~batch_size () =
  if queue_capacity < 1 then
    invalid_arg
      (Fmt.str "Forwarder.create: queue_capacity = %d < 1" queue_capacity);
  if batch_size < 1 then
    invalid_arg (Fmt.str "Forwarder.create: batch_size = %d < 1" batch_size);
  let push_prog, pop_prog =
    match progress with
    | None -> (None, None)
    | Some p ->
        ( Some (Dift_obs.Progress.leg p (ns ^ ".push")),
          Some (Dift_obs.Progress.leg p (ns ^ ".pop")) )
  in
  let ring =
    Spsc.create ?push_leg:push_prog ?pop_leg:pop_prog
      ~capacity:queue_capacity ()
  in
  (* + 2: room for the in-flight record on each side on top of the
     ring's worth, so recycling (almost) never falls through to GC.
     No progress legs: the free ring never blocks (try_pop/try_push
     only), so there is no seam to watch. *)
  let free = Spsc.create ~capacity:(queue_capacity + 2) () in
  let occupancy =
    Option.map
      (fun reg ->
        let open Dift_obs in
        let n suffix = ns ^ suffix in
        Registry.gauge_fn reg (n ".ring.capacity_batches")
          ~help:"ring slots" (fun () -> Spsc.capacity ring);
        Registry.gauge_fn reg (n ".ring.stalls")
          ~help:"producer blocked on a full ring" (fun () ->
            Spsc.producer_stalls ring);
        Registry.gauge_fn reg (n ".ring.waits")
          ~help:"consumer blocked on an empty ring" (fun () ->
            Spsc.consumer_waits ring);
        Registry.gauge_fn reg (n ".ring.drops")
          ~help:"batches dropped after abort" (fun () -> Spsc.dropped ring);
        Registry.histogram reg (n ".forwarder.batch_occupancy")
          ~help:"events per pushed batch"
          ~buckets:(occupancy_buckets batch_size))
      obs
  in
  let no_batch = { data = [||]; len = 0; weight = 0 } in
  let t =
    {
      ring;
      free;
      batch_size;
      no_batch;
      cur = no_batch;
      events = 0;
      batches = 0;
      dropped_batches = 0;
      dropped_events = 0;
      discarded_batches = 0;
      discarded_events = 0;
      consumed_batches = 0;
      consumed_events = 0;
      chaos = Option.map (fun c -> Chaos.instance ~escalate c ~ns) chaos;
      chaos_free =
        Option.map
          (fun c ->
            Chaos.instance ~targeted_only:true c ~ns:("ring.free." ^ ns))
          chaos;
      occupancy;
      trace;
      flight;
      f_ns = ns;
      push_prog;
      pop_prog;
    }
  in
  (match obs with
  | Some reg ->
      let open Dift_obs in
      Registry.gauge_fn reg (ns ^ ".forwarder.events")
        ~help:"events forwarded" (fun () -> t.events);
      Registry.gauge_fn reg (ns ^ ".forwarder.batches")
        ~help:"batches delivered to the ring" (fun () -> t.batches);
      Registry.gauge_fn reg (ns ^ ".forwarder.dropped_batches")
        ~help:"batches lost on the producer side (abort/injected)"
        (fun () -> t.dropped_batches);
      Registry.gauge_fn reg (ns ^ ".forwarder.dropped_events")
        ~help:"events lost on the producer side (abort/injected)"
        (fun () -> t.dropped_events);
      Registry.gauge_fn reg (ns ^ ".forwarder.discarded_batches")
        ~help:"batches popped but not processed (injected pop failure)"
        (fun () -> t.discarded_batches);
      Registry.gauge_fn reg (ns ^ ".forwarder.discarded_events")
        ~help:"events popped but not processed (injected pop failure)"
        (fun () -> t.discarded_events);
      Registry.gauge_fn reg (ns ^ ".forwarder.consumed_batches")
        ~help:"batches fully processed by the consumer" (fun () ->
          t.consumed_batches);
      Registry.gauge_fn reg (ns ^ ".forwarder.consumed_events")
        ~help:"events fully processed by the consumer" (fun () ->
          t.consumed_events);
      Registry.gauge_fn reg (ns ^ ".ring.in_flight_batches")
        ~help:"batches delivered but not yet popped" (fun () ->
          Spsc.length t.ring)
  | None -> ());
  t

let events t = t.events
let batches t = t.batches
let producer_stalls t = Spsc.producer_stalls t.ring
let consumer_waits t = Spsc.consumer_waits t.ring
let dropped t = t.dropped_batches
let dropped_batches t = t.dropped_batches
let dropped_events t = t.dropped_events
let discarded_batches t = t.discarded_batches
let discarded_events t = t.discarded_events
let consumed_batches t = t.consumed_batches
let consumed_events t = t.consumed_events
let in_flight_batches t = Spsc.length t.ring
let aborted t = Spsc.aborted t.ring

(* One bounded flight event on the acting domain's ring; free when the
   recorder is off (one branch). *)
let flight_ev t ?(a = 0) ?(b = 0) name =
  match t.flight with
  | None -> ()
  | Some fl -> Dift_obs.Flight.record fl ~a ~b ~cat:t.f_ns name

(* Push one batch, recording the producer's side of the timeline: a
   span named [ring.stall] when the push parked on a full ring (a
   backpressure wave) and [ring.enqueue] otherwise, then a sample of
   the ring occupancy. *)
let traced_push t batch =
  match t.trace with
  | None -> Spsc.push t.ring batch
  | Some tr ->
      let open Dift_obs in
      let stalls0 = Spsc.producer_stalls t.ring in
      let t0 = Trace.now_ns tr in
      Spsc.push t.ring batch;
      let dur_ns = Trace.now_ns tr - t0 in
      let name =
        if Spsc.producer_stalls t.ring > stalls0 then "ring.stall"
        else "ring.enqueue"
      in
      Trace.complete_ns tr ~cat:"parallel" name ~start_ns:t0 ~dur_ns;
      Trace.counter tr ~cat:"parallel" "ring.occupancy"
        (Spsc.length t.ring)

(* The producer lost this batch: its elements were accepted by {!add}
   but will never reach the consumer. *)
let account_drop t b =
  t.dropped_batches <- t.dropped_batches + 1;
  t.dropped_events <- t.dropped_events + b.weight;
  flight_ev t "ring.drop" ~a:b.weight ~b:t.dropped_batches

let flush t =
  let b = t.cur in
  if b.len > 0 then begin
    (match t.occupancy with
    | Some h -> Dift_obs.Registry.observe h b.len
    | None -> ());
    (* the consumer takes ownership of the record (and its length —
       no [Array.sub] for a partial batch); open a fresh one lazily *)
    t.cur <- t.no_batch;
    (* only the producer increments [Spsc.dropped], so the delta
       around the push tells exactly whether this batch landed on the
       ring or fell to a post-abort counted drop *)
    let deliver () =
      let d0 = Spsc.dropped t.ring in
      traced_push t b;
      if Spsc.dropped t.ring > d0 then account_drop t b
      else begin
        t.batches <- t.batches + 1;
        (match t.push_prog with
        | Some l -> Dift_obs.Progress.tick l
        | None -> ());
        flight_ev t "ring.push" ~a:b.weight ~b:(Spsc.length t.ring)
      end
    in
    match t.chaos with
    | None -> deliver ()
    | Some c -> (
        match Chaos.on_push c with
        | Chaos.Proceed -> deliver ()
        | Chaos.Fail -> account_drop t b
        | Chaos.Abort_now ->
            (* the consumer side dies under us: tear the ring down,
               then let the push become a counted drop *)
            Spsc.abort t.ring;
            deliver ()
        | Chaos.Raise_now e ->
            account_drop t b;
            raise e)
  end

(* An open batch to append to: the current one, a recycled one off the
   free list (steady state — no allocation), or a fresh record.  An
   injected [ring.free.<ns>/pop] fault degrades recycling (a [Drop]
   skips the free list for this batch, an [Abort] kills the free ring
   for good, a [Raise] crashes the producer) — it never loses
   events. *)
let open_batch t =
  if t.cur != t.no_batch then t.cur
  else begin
    let pop_free () =
      match Spsc.try_pop t.free with
      | Some b ->
          b.len <- 0;
          b.weight <- 0;
          b
      | None -> { data = [||]; len = 0; weight = 0 }
    in
    let b =
      match t.chaos_free with
      | None -> pop_free ()
      | Some c -> (
          match Chaos.on_pop c with
          | Chaos.Proceed -> pop_free ()
          | Chaos.Fail -> { data = [||]; len = 0; weight = 0 }
          | Chaos.Abort_now ->
              Spsc.abort t.free;
              { data = [||]; len = 0; weight = 0 }
          | Chaos.Raise_now e -> raise e)
    in
    t.cur <- b;
    b
  end

let add t e =
  let b = open_batch t in
  if b.data == [||] then b.data <- Array.make t.batch_size e;
  b.data.(b.len) <- e;
  b.len <- b.len + 1;
  b.weight <- b.weight + 1;
  t.events <- t.events + 1;
  if b.len = t.batch_size then flush t

(* Append one element standing for [n] logical events (an encoded
   multi-event batch): every event counter on this channel moves by
   [n], while ring occupancy still moves by one slot element. *)
let add_n t e n =
  let b = open_batch t in
  if b.data == [||] then b.data <- Array.make t.batch_size e;
  b.data.(b.len) <- e;
  b.len <- b.len + 1;
  b.weight <- b.weight + n;
  t.events <- t.events + n;
  if b.len = t.batch_size then flush t

let close t =
  flush t;
  Spsc.close t.ring;
  flight_ev t "ring.close" ~a:t.events ~b:t.batches

let abort t =
  Spsc.abort t.ring;
  flight_ev t "ring.abort"

(* Pop one batch, recording the consumer's side of the timeline: a
   span named [ring.wait] when the pop parked on an empty ring (a
   helper idle episode) and [ring.dequeue] otherwise, then a sample of
   the ring occupancy. *)
let traced_pop t =
  match t.trace with
  | None -> Spsc.pop t.ring
  | Some tr ->
      let open Dift_obs in
      let waits0 = Spsc.consumer_waits t.ring in
      let t0 = Trace.now_ns tr in
      let batch = Spsc.pop t.ring in
      let dur_ns = Trace.now_ns tr - t0 in
      let name =
        if Spsc.consumer_waits t.ring > waits0 then "ring.wait"
        else "ring.dequeue"
      in
      Trace.complete_ns tr ~cat:"parallel" name ~start_ns:t0 ~dur_ns;
      Trace.counter tr ~cat:"parallel" "ring.occupancy"
        (Spsc.length t.ring);
      batch

(* A batch popped but not processed — the consumer-side loss mirror of
   [account_drop]. *)
let account_discard t b =
  t.discarded_batches <- t.discarded_batches + 1;
  t.discarded_events <- t.discarded_events + b.weight;
  flight_ev t "ring.discard" ~a:b.weight ~b:t.discarded_batches

let drain ?(around_batch = fun k -> k ()) t ~f =
  let run_batch b () =
    for i = 0 to b.len - 1 do
      f (Array.unsafe_get b.data i)
    done
  in
  (* recycle the record; if the free list is momentarily full (or an
     injected [ring.free.<ns>/push] fault fires) the record just falls
     to the GC *)
  let recycle b =
    b.len <- 0;
    b.weight <- 0;
    match t.chaos_free with
    | None -> ignore (Spsc.try_push t.free b : bool)
    | Some c -> (
        match Chaos.on_push c with
        | Chaos.Proceed -> ignore (Spsc.try_push t.free b : bool)
        | Chaos.Fail -> ()
        | Chaos.Abort_now -> Spsc.abort t.free
        | Chaos.Raise_now e -> raise e)
  in
  (* Close the in-flight accounting gap: [Spsc.pop] honours the abort
     flag before buffered elements, so batches already delivered when
     an abort lands would otherwise vanish from the books ([batches]
     exceeding processed events by up to the queue capacity).  After
     any abort the producer can no longer publish, so sweeping the
     buffer into the discard counters makes
     [batches = consumed + discarded (+ racing in-flight)] reconcile. *)
  let sweep () =
    if Spsc.aborted t.ring then begin
      let nb = ref 0 and ne = ref 0 in
      let rec go () =
        match Spsc.pop_remaining t.ring with
        | Some b ->
            incr nb;
            ne := !ne + b.weight;
            account_discard t b;
            recycle b;
            go ()
        | None -> ()
      in
      go ();
      if !nb > 0 then flight_ev t "ring.sweep" ~a:!nb ~b:!ne
    end
  in
  (* [true] = the batch was fully processed; [false] = it became a
     counted discard.  An injected raise propagates un-accounted — the
     caller's handler books the batch. *)
  let consume b =
    match t.chaos with
    | None ->
        around_batch (run_batch b);
        true
    | Some c -> (
        match Chaos.on_pop c with
        | Chaos.Proceed ->
            around_batch (run_batch b);
            true
        | Chaos.Fail ->
            account_discard t b;
            false
        | Chaos.Abort_now ->
            (* consumer gives up: the next pop sees the abort, drain
               sweeps and terminates; this batch is a counted discard *)
            Spsc.abort t.ring;
            account_discard t b;
            false
        | Chaos.Raise_now e -> raise e)
  in
  let rec loop () =
    match traced_pop t with
    | None -> sweep ()
    | Some b ->
        let processed =
          try consume b
          with e ->
            (* the batch in hand is neither processed nor yet counted:
               book it before the exception escapes, or it would leave
               the accounting open *)
            account_discard t b;
            recycle b;
            raise e
        in
        if processed then begin
          t.consumed_batches <- t.consumed_batches + 1;
          t.consumed_events <- t.consumed_events + b.weight;
          (match t.pop_prog with
          | Some l -> Dift_obs.Progress.tick l
          | None -> ());
          flight_ev t "ring.pop" ~a:b.weight ~b:(Spsc.length t.ring)
        end;
        recycle b;
        loop ()
  in
  (* A consumer dying mid-drain must not leave the producer parked
     against a full ring: tear the channel down first, so the
     producer's outstanding and subsequent pushes become counted
     drops instead of a wedge — then sweep what was already delivered
     so it is counted too. *)
  try loop ()
  with e ->
    Spsc.abort t.ring;
    sweep ();
    raise e
