(** Event routing for the sharded N-helper runtime
    ({!Parallel.run_sharded}).

    The shadow address space is partitioned across helper shards by
    {e block interleaving} the integer {!Dift_vm.Loc} encoding: location
    [l] belongs to shard [((l lsr 1) lsr block_bits) mod shards].  The
    default block of [2{^6} = 64] locations matches
    [Dift_isa.Reg.count], so one register frame — one activation's
    registers — lives entirely on one shard, successive call frames
    round-robin across shards, and memory is striped in 64-word
    blocks.

    A router value is a pure description: [shard_of_loc], [home_of]
    and [participants] are arithmetic on the event alone, so the
    application domain (routing) and every helper domain (deciding its
    own role in a cross-shard event) evaluate the same function
    independently and always agree.  No state is shared; this is the
    "routing key" of [docs/forwarding-protocol.md]. *)

open Dift_vm

type t

(** Block size exponent used when [?block_bits] is omitted: [6], i.e.
    64-location blocks aligned with the register-frame size. *)
val default_block_bits : int

(** Largest supported shard count (participant sets are one-word
    bitmasks). *)
val max_shards : int

(** [create ~shards ()] describes a partition of the location space
    into [shards] interleaved shards of [2{^block_bits}]-location
    blocks.
    @raise Invalid_argument if [shards < 1], [shards > max_shards] or
    [block_bits] is outside [[0, 30]]. *)
val create : ?block_bits:int -> shards:int -> unit -> t

(** Number of shards in the partition. *)
val shards : t -> int

(** The block size exponent this router was created with. *)
val block_bits : t -> int

(** [shard_of_loc t l] is the shard owning location [l]. *)
val shard_of_loc : t -> Loc.t -> int

(** [owns t s l] is [shard_of_loc t l = s]. *)
val owns : t -> int -> Loc.t -> bool

(** [home_of t e] is the shard that executes the engine transfer
    function for event [e]: the owner of the first write when [e]
    writes (keeping stores local), else the owner of the first read
    (sink-only events evaluate where their operand taint lives), else
    [e.step mod shards]. *)
val home_of : t -> Event.exec -> int

(** [participants t e] is the bitmask of shards involved in [e]: the
    owners of every read and write location plus the home shard.  A
    one-bit mask means the event is purely local to that shard. *)
val participants : t -> Event.exec -> int

(** {!home_of} over a decoded {!Event.view} — same arithmetic, so
    feeder and shard agree on the verdict for the same event. *)
val home_of_view : t -> Event.view -> int

(** {!participants} over a decoded {!Event.view}. *)
val participants_view : t -> Event.view -> int

(** [is_local mask] — does this participant mask name exactly one
    shard? *)
val is_local : int -> bool

(** [iter_shards mask f] applies [f] to each set bit of [mask] in
    ascending shard order — the canonical leg order of the cross-shard
    protocol. *)
val iter_shards : int -> (int -> unit) -> unit
