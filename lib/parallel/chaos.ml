(** Deterministic fault injection; see the interface for the model.

    An instance's operation counters are atomics: each counter is
    bumped by exactly one domain (the channel side that owns the
    operation), but [fired] totals are read cross-domain by tests and
    the CLI, and atomics keep every read untorn. *)

exception Injected of string

type op = Push | Pop | Spawn
type fault = Stall of int | Delay of int | Drop | Abort | Raise
type rule = { on : op; at : int; fault : fault; where : string option }
type plan = rule list

(* -- plan text form ----------------------------------------------------- *)

let op_to_string = function Push -> "push" | Pop -> "pop" | Spawn -> "spawn"

let fault_to_string = function
  | Stall ns -> Fmt.str "stall:%d" ns
  | Delay ns -> Fmt.str "delay:%d" ns
  | Drop -> "drop"
  | Abort -> "abort"
  | Raise -> "raise"

let rule_to_string r =
  Fmt.str "%s%s@%d=%s"
    (match r.where with None -> "" | Some w -> w ^ "/")
    (op_to_string r.on) r.at (fault_to_string r.fault)

let plan_to_string p = String.concat ";" (List.map rule_to_string p)
let pp_plan ppf p = Fmt.string ppf (plan_to_string p)

let fault_of_string s =
  match String.split_on_char ':' s with
  | [ "drop" ] -> Ok Drop
  | [ "abort" ] -> Ok Abort
  | [ "raise" ] -> Ok Raise
  | [ (("stall" | "delay") as kind); ns ] -> (
      match int_of_string_opt ns with
      | Some n when n >= 0 -> Ok (if kind = "stall" then Stall n else Delay n)
      | _ -> Error (Fmt.str "bad duration %S (want non-negative ns)" ns))
  | _ -> Error (Fmt.str "unknown fault %S" s)

let rule_of_string s =
  let where, rest =
    match String.index_opt s '/' with
    | Some i ->
        ( Some (String.sub s 0 i),
          String.sub s (i + 1) (String.length s - i - 1) )
    | None -> (None, s)
  in
  match String.index_opt rest '@' with
  | None -> Error (Fmt.str "rule %S: missing '@'" s)
  | Some i -> (
      let op_name = String.sub rest 0 i in
      let tail = String.sub rest (i + 1) (String.length rest - i - 1) in
      match String.index_opt tail '=' with
      | None -> Error (Fmt.str "rule %S: missing '='" s)
      | Some j -> (
          let at_s = String.sub tail 0 j in
          let f_s = String.sub tail (j + 1) (String.length tail - j - 1) in
          let op =
            match op_name with
            | "push" -> Ok Push
            | "pop" -> Ok Pop
            | "spawn" -> Ok Spawn
            | o -> Error (Fmt.str "rule %S: unknown op %S" s o)
          in
          match (op, int_of_string_opt at_s, fault_of_string f_s) with
          | Ok on, Some at, Ok fault when at >= 1 ->
              Ok { on; at; fault; where }
          | Ok _, None, _ ->
              Error (Fmt.str "rule %S: bad occurrence %S" s at_s)
          | Ok _, Some at, Ok _ ->
              Error (Fmt.str "rule %S: occurrence %d < 1" s at)
          | Ok _, Some _, (Error _ as e) -> e
          | (Error _ as e), _, _ -> e))

let plan_of_string s =
  let parts =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc p ->
        match (acc, rule_of_string p) with
        | Error _, _ -> acc
        | Ok rs, Ok r -> Ok (r :: rs)
        | Ok _, Error e -> Error e)
      (Ok []) parts
    |> Result.map List.rev

(* -- seeded plans ------------------------------------------------------- *)

(* Small occurrence indices and sub-5ms sleeps: plans must bite within
   a CI-sized run and never slow the sweep meaningfully. *)
let plan_of_seed ?(rules = 4) seed =
  let st = Random.State.make [| 0x5eed; seed |] in
  let rule _ =
    let on = if Random.State.bool st then Push else Pop in
    let at = 1 + Random.State.int st 24 in
    let fault =
      match Random.State.int st 10 with
      | 0 | 1 | 2 -> Stall (100_000 + Random.State.int st 2_000_000)
      | 3 | 4 -> Delay (50_000 + Random.State.int st 1_000_000)
      | 5 | 6 -> Drop
      | 7 -> Abort
      | _ -> Raise
    in
    { on; at; fault; where = None }
  in
  let base = List.init (max 1 rules) rule in
  (* one seed in ~6 also rehearses a spawn failure *)
  if Random.State.int st 6 = 0 then
    { on = Spawn; at = 1 + Random.State.int st 2; fault = Raise; where = None }
    :: base
  else base

(* -- instances ---------------------------------------------------------- *)

type t = {
  c_plan : plan;
  c_fired : int Atomic.t;
  spawns : int Atomic.t;
  c_stalled_ns : int Atomic.t;
      (** total injected sleep actually served, post-clamp — lets a
          watchdog or test reconcile elapsed time against the plan *)
  c_flight : Dift_obs.Flight.t option;
      (** every fired rule records a [chaos.fire] flight event {e on
          the intercepting domain} — so a crash bundle always carries
          at least one event from the domain the fault hit *)
}

let create ?flight plan =
  { c_plan = plan; c_fired = Atomic.make 0; spawns = Atomic.make 0;
    c_stalled_ns = Atomic.make 0; c_flight = flight }
let plan t = t.c_plan
let fired t = Atomic.get t.c_fired
let stalled_ns t = Atomic.get t.c_stalled_ns

let register_obs t reg =
  Dift_obs.Registry.gauge_fn reg "chaos.fired"
    ~help:"faults fired so far, all instances" (fun () -> fired t);
  Dift_obs.Registry.gauge_fn reg "chaos.stalled_ns"
    ~help:"injected sleep served so far (ns, post-clamp)" (fun () ->
      stalled_ns t)

type inst = {
  owner : t;
  ns : string;
  rules : rule list;  (** pre-filtered for this channel's namespace *)
  escalate : bool;
      (** losses on this channel would wedge a higher-level protocol:
          map [Fail]/[Abort_now] to [Raise_now] so they become a clean
          crash instead *)
  pushes : int Atomic.t;
  pops : int Atomic.t;
}

let prefix ~pre s =
  String.length pre <= String.length s
  && String.sub s 0 (String.length pre) = pre

let instance ?(escalate = false) ?(targeted_only = false) t ~ns =
  let rules =
    List.filter
      (fun r ->
        r.on <> Spawn
        &&
        match r.where with
        | None -> not targeted_only
        | Some w -> prefix ~pre:w ns)
      t.c_plan
  in
  { owner = t; ns; rules; escalate; pushes = Atomic.make 0; pops = Atomic.make 0 }

type action = Proceed | Fail | Abort_now | Raise_now of exn

(* A fat-fingered plan ("stall:3600000000000") must degrade a run, not
   wedge it past any reasonable watchdog deadline: injected sleeps are
   clamped to 2 s apiece, and every ns actually served is accounted in
   [stalled_ns] so deadline tests can reconcile elapsed time. *)
let max_sleep_ns = 2_000_000_000

let sleep_ns owner ns =
  if ns > 0 then begin
    let ns = min ns max_sleep_ns in
    ignore (Atomic.fetch_and_add owner.c_stalled_ns ns);
    Unix.sleepf (float_of_int ns /. 1e9)
  end

(* Serve the [n]-th occurrence of [op]: sleep out any stall/delay rule
   that matched, then return the strongest terminal action (Raise >
   Abort > Drop) so composite plans behave predictably. *)
let act owner rules op ~what n =
  let terminal = ref Proceed in
  List.iter
    (fun r ->
      if r.on = op && r.at = n then begin
        Atomic.incr owner.c_fired;
        (match owner.c_flight with
        | Some fl ->
            Dift_obs.Flight.record fl ~cat:"chaos" "chaos.fire" ~a:n
              ~detail:(Fmt.str "%s=%s" what (fault_to_string r.fault))
        | None -> ());
        match r.fault with
        | Stall ns | Delay ns -> sleep_ns owner ns
        | Drop -> (
            match !terminal with
            | Proceed -> terminal := Fail
            | Fail | Abort_now | Raise_now _ -> ())
        | Abort -> (
            match !terminal with
            | Proceed | Fail -> terminal := Abort_now
            | Abort_now | Raise_now _ -> ())
        | Raise ->
            terminal :=
              Raise_now (Injected (Fmt.str "injected crash at %s #%d" what n))
      end)
    rules;
  !terminal

(* On an escalating channel, a counted loss would silently break the
   protocol riding on it (a peer would wait forever for the lost
   element) — turn it into a crash of the intercepting side, which the
   supervisors tear down cleanly. *)
let escalated i ~what n action =
  if not i.escalate then action
  else
    match action with
    | Fail | Abort_now ->
        Raise_now
          (Injected (Fmt.str "injected loss escalated to crash at %s #%d" what n))
    | Proceed | Raise_now _ -> action

let on_push i =
  match i.rules with
  | [] -> Proceed
  | rules ->
      let n = 1 + Atomic.fetch_and_add i.pushes 1 in
      let what = i.ns ^ "/push" in
      escalated i ~what n (act i.owner rules Push ~what n)

let on_pop i =
  match i.rules with
  | [] -> Proceed
  | rules ->
      let n = 1 + Atomic.fetch_and_add i.pops 1 in
      let what = i.ns ^ "/pop" in
      escalated i ~what n (act i.owner rules Pop ~what n)

let on_spawn t =
  match List.filter (fun r -> r.on = Spawn) t.c_plan with
  | [] -> Proceed
  | rules ->
      let n = 1 + Atomic.fetch_and_add t.spawns 1 in
      act t rules Spawn ~what:"spawn" n
