(** The de-boxed forwarding wire; see the interface for the format.

    Layout notes.  A {!batch} is a struct-of-arrays of one lane per
    dynamic field plus a [desc] lane and a shared growable overflow
    area.  [desc] bit 0 selects the encoding: [1] is the frame-compact
    form ([desc lsr 1] is the activation-frame serial; the read/write
    sets reconstruct from the interned {!Site.row} as
    [frame * Site.frame_stride + off], with a Load's trailing memory
    read and a Store's memory write rebuilt from the [addr] lane), [0]
    is the explicit form ([desc lsr 1] indexes the overflow area:
    [nreads, nwrites, reads.., writes..] verbatim — call boundaries,
    faulting events, anything whose dynamic shape diverges from the
    static row).  The encoder verifies the compact shape element-wise
    per event, so decode is exact by construction, not by trust. *)

open Dift_isa
open Dift_vm

type batch = {
  b_site : int array;
  b_step : int array;
  b_tid : int array;
  b_addr : int array;
  b_value : int array;
  b_next_pc : int array;
  b_input : int array;
  b_desc : int array;
  mutable b_ovf : int array;
  mutable b_esc : Event.exec array;
      (** escape hatch: events {e foreign} to the interned program
          (hand-built streams whose [(func, pc, instr)] is not a real
          site) ride boxed here, referenced by a negative [desc].
          Machine streams never take it, so the steady state stays
          flat. *)
  mutable b_n : int;
  mutable b_ovf_n : int;
  mutable b_esc_n : int;
}

let batch_create ~events_per_batch =
  if events_per_batch < 1 then
    invalid_arg
      (Fmt.str "Codec.batch_create: events_per_batch = %d < 1"
         events_per_batch);
  let z () = Array.make events_per_batch 0 in
  {
    b_site = z ();
    b_step = z ();
    b_tid = z ();
    b_addr = z ();
    b_value = z ();
    b_next_pc = z ();
    b_input = z ();
    b_desc = z ();
    b_ovf = Array.make 64 0;
    b_esc = [||];
    b_n = 0;
    b_ovf_n = 0;
    b_esc_n = 0;
  }

let batch_capacity b = Array.length b.b_site
let batch_length b = b.b_n

let batch_clear b =
  b.b_n <- 0;
  b.b_ovf_n <- 0;
  if b.b_esc_n > 0 then begin
    (* drop the boxed references so a recycled batch does not pin them *)
    b.b_esc <- [||];
    b.b_esc_n <- 0
  end

(* -- encoding ----------------------------------------------------------- *)

type encoder = {
  e_table : Site.table;
  mutable e_func : Func.t;  (** last function seen (physical equality) *)
  mutable e_base : int;  (** its first site id *)
}

let encoder table =
  let r0 = Site.row table 0 in
  {
    e_table = table;
    e_func = r0.Site.s_func;
    e_base = Site.base table r0.Site.s_func.Func.name;
  }

(* Site id of an event, or [-1] when the event is foreign to the
   table: unknown function name, pc out of range, or a function /
   instruction that is not physically the program's own (hand-built
   test streams).  Machine events carry the program's own [Func.t] and
   [Instr.t], so physical equality is the exact fidelity check, and in
   the steady state this is one add (the base lookup is cached on
   physical function identity; [min_int] caches an unknown name). *)
let site_of enc (e : Event.exec) =
  if e.Event.func != enc.e_func then begin
    enc.e_func <- e.Event.func;
    enc.e_base <-
      (match Site.base_opt enc.e_table e.Event.func.Func.name with
      | Some b -> b
      | None -> min_int)
  end;
  if enc.e_base = min_int || e.Event.pc < 0 then -1
  else
    let site = enc.e_base + e.Event.pc in
    if site >= Site.size enc.e_table then -1
    else
      let row = Site.row enc.e_table site in
      if row.Site.s_func == e.Event.func && row.Site.s_instr == e.Event.instr
      then site
      else -1

(* The common activation-frame serial of the event's locations, when
   its dynamic read/write sets match the row's static shape exactly;
   [-1] otherwise (then the explicit encoding carries the sets
   verbatim).  A register location [l] matches static offset [off] iff
   [l - off] is a non-negative multiple of the frame stride — memory
   locations (even) can never match a register offset (odd). *)
let compact_frame (row : Site.row) (e : Event.exec) =
  let stride = Site.frame_stride in
  let frame = ref (-1) in
  let check off l =
    let d = l - off in
    d >= 0
    && d mod stride = 0
    &&
    let q = d / stride in
    if !frame = -1 then begin
      frame := q;
      true
    end
    else !frame = q
  in
  let rec walk offs i rest ~mem_last =
    if i < Array.length offs then
      match rest with
      | l :: tl -> check offs.(i) l && walk offs (i + 1) tl ~mem_last
      | [] -> false
    else
      match (rest, mem_last) with
      | [], false -> true
      | [ l ], true -> e.Event.addr >= 0 && l = e.Event.addr lsl 1
      | _ -> false
  in
  if
    walk row.Site.s_read_offs 0 e.Event.reads ~mem_last:row.Site.s_mem_read
    && walk row.Site.s_write_offs 0 e.Event.writes
         ~mem_last:row.Site.s_mem_write
  then if !frame = -1 then 0 else !frame
  else -1

let grow_ovf b need =
  if Array.length b.b_ovf < need then begin
    let a = Array.make (max need (2 * Array.length b.b_ovf)) 0 in
    Array.blit b.b_ovf 0 a 0 b.b_ovf_n;
    b.b_ovf <- a
  end

(** Append one event ([batch_length] must be under [batch_capacity]). *)
let encode enc b (e : Event.exec) =
  let i = b.b_n in
  let site = site_of enc e in
  b.b_site.(i) <- site;
  b.b_step.(i) <- e.Event.step;
  b.b_tid.(i) <- e.Event.tid;
  b.b_addr.(i) <- e.Event.addr;
  b.b_value.(i) <- e.Event.value;
  b.b_next_pc.(i) <- e.Event.next_pc;
  b.b_input.(i) <- e.Event.input_index;
  (if site < 0 then begin
     (* foreign event: carry it boxed, desc = -(index + 1) *)
     let n = b.b_esc_n in
     if Array.length b.b_esc <= n then begin
       let a = Array.make (max 4 (2 * Array.length b.b_esc)) e in
       Array.blit b.b_esc 0 a 0 n;
       b.b_esc <- a
     end;
     b.b_esc.(n) <- e;
     b.b_esc_n <- n + 1;
     b.b_desc.(i) <- -(n + 1)
   end
   else
     let row = Site.row enc.e_table site in
     let frame = compact_frame row e in
     if frame >= 0 then b.b_desc.(i) <- (frame lsl 1) lor 1
     else begin
     let nr = List.length e.Event.reads
     and nw = List.length e.Event.writes in
     let off = b.b_ovf_n in
     grow_ovf b (off + 2 + nr + nw);
     b.b_ovf.(off) <- nr;
     b.b_ovf.(off + 1) <- nw;
     let j = ref (off + 2) in
     List.iter
       (fun l ->
         b.b_ovf.(!j) <- l;
         incr j)
       e.Event.reads;
     List.iter
       (fun l ->
         b.b_ovf.(!j) <- l;
         incr j)
       e.Event.writes;
     b.b_ovf_n <- !j;
     b.b_desc.(i) <- off lsl 1
   end);
  b.b_n <- i + 1

(* -- decoding ----------------------------------------------------------- *)

let ensure arr n =
  if Array.length arr >= n then arr
  else Array.make (max n ((2 * Array.length arr) + 4)) 0

(** Decode event [i] of [b] into the reusable view (no allocation once
    the view's scratch arrays have grown to the stream's maximum
    read/write fan). *)
let decode_into table b i (v : Event.view) =
  let desc0 = b.b_desc.(i) in
  if desc0 < 0 then
    (* foreign event off the escape hatch: exact by construction *)
    Event.view_fill v b.b_esc.(-desc0 - 1)
  else begin
  let row = Site.row table b.b_site.(i) in
  v.Event.v_func <- row.Site.s_func;
  v.Event.v_pc <- row.Site.s_pc;
  v.Event.v_instr <- row.Site.s_instr;
  v.Event.v_step <- b.b_step.(i);
  v.Event.v_tid <- b.b_tid.(i);
  v.Event.v_addr <- b.b_addr.(i);
  v.Event.v_value <- b.b_value.(i);
  v.Event.v_next_pc <- b.b_next_pc.(i);
  v.Event.v_input_index <- b.b_input.(i);
  v.Event.v_exec <- None;
  let desc = b.b_desc.(i) in
  if desc land 1 = 1 then begin
    let frame = desc lsr 1 in
    let base = frame * Site.frame_stride in
    let offs = row.Site.s_read_offs in
    let nro = Array.length offs in
    let nr = nro + if row.Site.s_mem_read then 1 else 0 in
    let ra = ensure v.Event.v_reads nr in
    for k = 0 to nro - 1 do
      ra.(k) <- base + offs.(k)
    done;
    if row.Site.s_mem_read then ra.(nro) <- b.b_addr.(i) lsl 1;
    v.Event.v_reads <- ra;
    v.Event.v_nreads <- nr;
    let woffs = row.Site.s_write_offs in
    let nwo = Array.length woffs in
    let nw = nwo + if row.Site.s_mem_write then 1 else 0 in
    let wa = ensure v.Event.v_writes nw in
    for k = 0 to nwo - 1 do
      wa.(k) <- base + woffs.(k)
    done;
    if row.Site.s_mem_write then wa.(nwo) <- b.b_addr.(i) lsl 1;
    v.Event.v_writes <- wa;
    v.Event.v_nwrites <- nw
  end
  else begin
    let off = desc lsr 1 in
    let nr = b.b_ovf.(off) and nw = b.b_ovf.(off + 1) in
    let ra = ensure v.Event.v_reads nr in
    Array.blit b.b_ovf (off + 2) ra 0 nr;
    let wa = ensure v.Event.v_writes nw in
    Array.blit b.b_ovf (off + 2 + nr) wa 0 nw;
    v.Event.v_reads <- ra;
    v.Event.v_nreads <- nr;
    v.Event.v_writes <- wa;
    v.Event.v_nwrites <- nw
  end
  end

(* -- the coded channel -------------------------------------------------- *)

type t = {
  table : Site.table;
  enc : encoder;
  fwd : batch Forwarder.t;
      (** [batch_size = 1]: one ring slot per encoded batch, event
          accounting in {!Forwarder.add_n} weights *)
  free : batch Spsc.t;
      (** decoded batches coming back for reuse — the preallocated
          lanes cycle producer → consumer → producer *)
  chaos_free : Chaos.inst option;
  events_per_batch : int;
  mutable cur : batch option;  (** producer side *)
  mutable scratch : Event.view option;  (** consumer side *)
}

let create ?obs ?trace ?flight ?chaos ?progress ?escalate ?(ns = "parallel")
    ~queue_capacity ~events_per_batch ~table () =
  if events_per_batch < 1 then
    invalid_arg
      (Fmt.str "Codec.create: events_per_batch = %d < 1" events_per_batch);
  let fwd =
    Forwarder.create ?obs ?trace ?flight ?chaos ?progress ?escalate ~ns
      ~queue_capacity ~batch_size:1 ()
  in
  {
    table;
    enc = encoder table;
    fwd;
    free = Spsc.create ~capacity:(queue_capacity + 2) ();
    chaos_free =
      Option.map
        (fun c ->
          Chaos.instance ~targeted_only:true c ~ns:("ring.free." ^ ns))
        chaos;
    events_per_batch;
    cur = None;
    scratch = None;
  }

let table t = t.table

let fresh t = batch_create ~events_per_batch:t.events_per_batch

(* The open batch: the current one, a recycled one off the free list
   (steady state — the lanes cycle, no allocation), or a fresh set of
   lanes.  Same free-ring chaos semantics as {!Forwarder}: a [Drop]
   skips recycling once, an [Abort] kills the free ring, a [Raise]
   crashes the producer. *)
let open_cur t =
  match t.cur with
  | Some b -> b
  | None ->
      let pop_free () =
        match Spsc.try_pop t.free with
        | Some b ->
            batch_clear b;
            b
        | None -> fresh t
      in
      let b =
        match t.chaos_free with
        | None -> pop_free ()
        | Some c -> (
            match Chaos.on_pop c with
            | Chaos.Proceed -> pop_free ()
            | Chaos.Fail -> fresh t
            | Chaos.Abort_now ->
                Spsc.abort t.free;
                fresh t
            | Chaos.Raise_now e -> raise e)
      in
      t.cur <- Some b;
      b

let flush t =
  match t.cur with
  | None -> ()
  | Some b ->
      if b.b_n > 0 then begin
        t.cur <- None;
        (* batch_size = 1: lands on the ring immediately, weighted by
           its event count *)
        Forwarder.add_n t.fwd b b.b_n
      end

let feed t e =
  let b = open_cur t in
  encode t.enc b e;
  if b.b_n = t.events_per_batch then flush t

let close t =
  flush t;
  Forwarder.close t.fwd

let abort t = Forwarder.abort t.fwd
let aborted t = Forwarder.aborted t.fwd

let scratch_view t =
  match t.scratch with
  | Some v -> v
  | None ->
      let r0 = Site.row t.table 0 in
      let v =
        Event.view_create ~func:r0.Site.s_func ~instr:r0.Site.s_instr
      in
      t.scratch <- Some v;
      v

let drain ?around_batch ?(after_batch = fun ~last_step:_ -> ()) t ~f =
  let v = scratch_view t in
  let recycle b =
    batch_clear b;
    match t.chaos_free with
    | None -> ignore (Spsc.try_push t.free b : bool)
    | Some c -> (
        match Chaos.on_push c with
        | Chaos.Proceed -> ignore (Spsc.try_push t.free b : bool)
        | Chaos.Fail -> ()
        | Chaos.Abort_now -> Spsc.abort t.free
        | Chaos.Raise_now e -> raise e)
  in
  Forwarder.drain ?around_batch t.fwd ~f:(fun b ->
      let n = b.b_n in
      for i = 0 to n - 1 do
        decode_into t.table b i v;
        f v
      done;
      if n > 0 then after_batch ~last_step:b.b_step.(n - 1);
      recycle b)

(* -- accounting passthrough (event counts are add_n weights) ----------- *)

let events t = Forwarder.events t.fwd
let batches t = Forwarder.batches t.fwd
let dropped_batches t = Forwarder.dropped_batches t.fwd
let dropped_events t = Forwarder.dropped_events t.fwd
let discarded_batches t = Forwarder.discarded_batches t.fwd
let discarded_events t = Forwarder.discarded_events t.fwd
let consumed_batches t = Forwarder.consumed_batches t.fwd
let consumed_events t = Forwarder.consumed_events t.fwd
let producer_stalls t = Forwarder.producer_stalls t.fwd
let consumer_waits t = Forwarder.consumer_waits t.fwd
let in_flight_batches t = Forwarder.in_flight_batches t.fwd
