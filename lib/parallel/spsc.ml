(** A bounded single-producer/single-consumer channel — the software
    incarnation of the core-to-core forwarding queue of paper §2.1.

    Ring buffer with atomic head/tail.  Only the consumer writes
    [head]; only the producer writes [tail]; each side reads the
    other's index atomically, which is what publishes the slot
    contents (plain writes to [buf] happen-before the index bump that
    makes them visible).  The mutex guards nothing but the parking
    protocol: a side that must block sets its [*_waiting] flag and
    re-checks the full/empty condition while holding the lock, and the
    opposite side broadcasts under the same lock, so no wakeup can be
    lost between the re-check and the wait.

    Slots hold the element representation directly with a unique
    sentinel block marking "empty" — not ['a option] — so a push does
    not allocate a [Some] box per element.  [Obj.t] (rather than a
    ['a] array with a magicked sentinel) keeps the buffer a pointer
    array even when ['a] is [float], which would otherwise be flattened
    into a flat float array the sentinel cannot inhabit. *)

(* The empty-slot marker: physically unique, never escapes. *)
let empty_slot : Obj.t = Obj.repr (ref ())

type 'a t = {
  buf : Obj.t array;
  cap : int;
  head : int Atomic.t;  (** next slot to pop; written by the consumer *)
  tail : int Atomic.t;  (** next slot to push; written by the producer *)
  closed : bool Atomic.t;
  aborted : bool Atomic.t;
  lock : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  producer_waiting : bool Atomic.t;
  consumer_waiting : bool Atomic.t;
  stalls : int Atomic.t;  (** incremented by the producer *)
  drops : int Atomic.t;  (** incremented by the producer *)
  waits : int Atomic.t;  (** incremented by the consumer *)
  push_leg : Dift_obs.Progress.leg option;
      (** armed while the producer is parked on a full ring *)
  pop_leg : Dift_obs.Progress.leg option;
      (** armed while the consumer is parked on an empty ring *)
}

let create ?push_leg ?pop_leg ~capacity () =
  if capacity < 1 then invalid_arg "Spsc.create: capacity < 1";
  {
    buf = Array.make capacity empty_slot;
    cap = capacity;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    closed = Atomic.make false;
    aborted = Atomic.make false;
    lock = Mutex.create ();
    not_full = Condition.create ();
    not_empty = Condition.create ();
    producer_waiting = Atomic.make false;
    consumer_waiting = Atomic.make false;
    stalls = Atomic.make 0;
    drops = Atomic.make 0;
    waits = Atomic.make 0;
    push_leg;
    pop_leg;
  }

(* Arm [leg] for the duration of [f] — parity-balanced even if [f]
   raises, so a leg can never be left armed by a crashing side. *)
let armed leg f =
  match leg with
  | None -> f ()
  | Some l ->
      Dift_obs.Progress.enter l;
      Fun.protect ~finally:(fun () -> Dift_obs.Progress.leave l) f

let capacity t = t.cap
let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)
let producer_stalls t = Atomic.get t.stalls
let consumer_waits t = Atomic.get t.waits
let dropped t = Atomic.get t.drops
let closed t = Atomic.get t.closed
let aborted t = Atomic.get t.aborted

let signal_locked t cond =
  Mutex.lock t.lock;
  Condition.broadcast cond;
  Mutex.unlock t.lock

(* How long a side spins before parking on the condition variable.
   When producer and consumer are rate-matched the ring oscillates
   around empty/full, and parking on every oscillation costs a wake
   syscall per batch; a short spin absorbs those oscillations so the
   slow path is reserved for genuinely lopsided rates.  On a machine
   without a second core to spin on (recommended_domain_count = 1),
   spinning only steals time from the domain we are waiting for, so
   both sides park immediately. *)
let spin_budget =
  if Domain.recommended_domain_count () > 1 then 2048 else 0

(* Spin while [cond] holds, up to the budget; true if it still holds
   (caller should park). *)
let spin_while cond =
  let i = ref 0 in
  while !i < spin_budget && cond () do
    Domain.cpu_relax ();
    incr i
  done;
  cond ()

(* Publish [x] at [tl] and wake the consumer if parked. *)
let store_and_publish t tl x =
  t.buf.(tl mod t.cap) <- Obj.repr x;
  Atomic.set t.tail (tl + 1);
  if Atomic.get t.consumer_waiting then signal_locked t t.not_empty

(* Park the producer until the ring has room or the consumer aborted.
   The progress leg is armed only here, on the park path, so the
   common non-blocking push pays nothing for the watchdog. *)
let wait_not_full t tl =
  armed t.push_leg @@ fun () ->
  Mutex.lock t.lock;
  Atomic.incr t.stalls;
  Atomic.set t.producer_waiting true;
  while
    (not (Atomic.get t.aborted)) && tl - Atomic.get t.head >= t.cap
  do
    Condition.wait t.not_full t.lock
  done;
  Atomic.set t.producer_waiting false;
  Mutex.unlock t.lock

let push t x =
  if Atomic.get t.closed then invalid_arg "Spsc.push: closed channel";
  if Atomic.get t.aborted then Atomic.incr t.drops
  else begin
    let tl = Atomic.get t.tail in
    if
      tl - Atomic.get t.head >= t.cap
      && spin_while (fun () ->
             (not (Atomic.get t.aborted))
             && tl - Atomic.get t.head >= t.cap)
    then wait_not_full t tl;
    if Atomic.get t.aborted then Atomic.incr t.drops
    else store_and_publish t tl x
  end

let try_push t x =
  if Atomic.get t.closed then invalid_arg "Spsc.try_push: closed channel";
  if Atomic.get t.aborted then begin
    Atomic.incr t.drops;
    true
  end
  else begin
    let tl = Atomic.get t.tail in
    if tl - Atomic.get t.head >= t.cap then false
    else begin
      store_and_publish t tl x;
      true
    end
  end

let close t =
  Atomic.set t.closed true;
  signal_locked t t.not_empty

let abort t =
  Atomic.set t.aborted true;
  signal_locked t t.not_full;
  signal_locked t t.not_empty

(* Park the consumer until an element arrives or the channel closes.
   Progress leg armed on the park path only, as in [wait_not_full]. *)
let wait_not_empty t =
  armed t.pop_leg @@ fun () ->
  Mutex.lock t.lock;
  Atomic.incr t.waits;
  Atomic.set t.consumer_waiting true;
  while
    Atomic.get t.tail = Atomic.get t.head
    && (not (Atomic.get t.closed))
    && not (Atomic.get t.aborted)
  do
    Condition.wait t.not_empty t.lock
  done;
  Atomic.set t.consumer_waiting false;
  Mutex.unlock t.lock

(* Take the element at [h]; the slot is reset to the sentinel so the
   ring does not retain the element until the slot is overwritten. *)
let take t h =
  let slot = h mod t.cap in
  let x : 'a = Obj.obj t.buf.(slot) in
  t.buf.(slot) <- empty_slot;
  Atomic.set t.head (h + 1);
  if Atomic.get t.producer_waiting then signal_locked t t.not_full;
  x

let rec pop t =
  let h = Atomic.get t.head in
  if Atomic.get t.aborted then None
  else if Atomic.get t.tail - h > 0 then Some (take t h)
  else if Atomic.get t.closed then
    (* a final element may have landed between the emptiness check and
       the closed check *)
    if Atomic.get t.tail - h > 0 then pop t else None
  else begin
    if
      spin_while (fun () ->
          Atomic.get t.tail = Atomic.get t.head
          && (not (Atomic.get t.closed))
          && not (Atomic.get t.aborted))
    then wait_not_empty t;
    pop t
  end

let try_pop t =
  let h = Atomic.get t.head in
  if Atomic.get t.aborted then None
  else if Atomic.get t.tail - h > 0 then Some (take t h)
  else None

(* Unlike [pop]/[try_pop], ignores the aborted flag: after an abort
   the producer never publishes again (pushes turn into counted
   drops), so the elements still buffered are exactly the ones that
   were delivered but will never be consumed — the sweep that lets
   the forwarder books reconcile instead of losing up to [capacity]
   batches uncounted. *)
let pop_remaining t =
  let h = Atomic.get t.head in
  if Atomic.get t.tail - h > 0 then Some (take t h) else None
