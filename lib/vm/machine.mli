(** The virtual machine: a multithreaded interpreter for {!Dift_isa}
    programs with an instrumentation-tool interface, deterministic
    seeded scheduling, a replayable schedule/input log, cycle-cost
    accounting and whole-state checkpointing.

    This is the substitute for the dynamic binary instrumentation
    substrate (Pin/Valgrind) every technique in the paper runs on:
    tools attached to the machine observe exactly the event stream a
    DBI plugin would.  The record/replay log and checkpoints serve
    checkpointing & logging and execution reduction (paper §2.2); the
    schedule/input/branch/value override hooks in {!config} serve the
    fault-location mechanisms of §3.1 and the environment patches of
    §3.2. *)

type config = {
  seed : int;  (** scheduler PRNG seed *)
  quantum_min : int;  (** min instructions between preemption points *)
  quantum_max : int;
  max_steps : int;  (** step budget before [Out_of_steps] *)
  heap_padding : int;  (** slack added to every allocation *)
  check_bounds : bool;  (** fault on heap accesses outside live blocks *)
  schedule : (int * int) list option;
      (** replay mode: the switch list recorded by a previous run *)
  input_override : (int * int) list;
      (** replay-with-edits: pairs [(index, value)] replacing specific
          input words (the avoidance framework's "malformed request"
          patch) *)
  flip_steps : int list;
      (** dynamic branch instances (by step) whose outcome is
          inverted — the predicate-switching mechanism of §3.1 *)
  value_replacements : (int * int) list;
      (** [(step, v)]: the value produced at dynamic step [step] is
          replaced by [v] — the value-replacement mechanism of §3.1 *)
}

val default_config : config

type t

exception Replay_divergence of string

(** Build a machine for a program and an input stream. *)
val create : ?config:config -> Dift_isa.Program.t -> input:int array -> t

(** Attach an instrumentation tool; its dispatch cost is charged per
    instruction from then on. *)
val attach : t -> Tool.t -> unit

(** Charge extra modelled cycles (used by tools for their overhead). *)
val charge : t -> int -> unit

(** Override the per-instruction base cost (replay fast-forwarding of
    log-applied regions). *)
val set_step_cost : t -> (Event.exec -> int) -> unit

val program : t -> Dift_isa.Program.t
val memory : t -> Memory.t

(** Modelled cycles so far (base + dispatch + tool charges). *)
val cycles : t -> int

(** Dynamic instructions executed so far. *)
val steps : t -> int

(** Program output, oldest first, as [(step, value)] pairs. *)
val output : t -> (int * int) list

val output_values : t -> int list

(** The recorded scheduling choices, oldest first. *)
val schedule_log : t -> (int * int) list

(** The recorded input reads, oldest first: [(step, index, value)]. *)
val input_log : t -> (int * int * int) list

(** Ask the machine to stop after the current instruction; the run's
    outcome becomes [Stopped reason].  For tools such as the attack
    detector. *)
val request_stop : t -> string -> unit

(** A hash of the externally observable machine state: memory contents
    and program output.  Two runs with equal fingerprints behaved
    identically as far as program semantics is concerned. *)
val fingerprint : t -> int

(** Run to completion (or fault / deadlock / step budget / stop
    request).  A machine runs once.
    @raise Replay_divergence when a replay schedule cannot be
    followed. *)
val run : t -> Event.outcome

(** {1 Checkpointing} *)

type checkpoint

(** Capture the entire mutable state.  The modelled cost
    ({!Cost.checkpoint_word} per live memory word) is charged to the
    machine. *)
val checkpoint : t -> checkpoint

(** Build a fresh machine whose state is the checkpoint's.  It shares
    nothing mutable with the checkpoint and may use a different
    config — e.g. replay mode with a recorded schedule suffix. *)
val of_checkpoint :
  ?config:config -> Dift_isa.Program.t -> input:int array -> checkpoint -> t

(** Live memory words the checkpoint captured (its cost measure). *)
val checkpoint_words : checkpoint -> int

(** Step counter at which the checkpoint was taken. *)
val checkpoint_step : checkpoint -> int
