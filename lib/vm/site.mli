(** Static-site interning: a dense integer id for every [(function,
    pc)] site of a program, mapping to an immutable side-table row
    that carries everything {e static} about the site — the
    instruction, its register read/write shape pre-encoded as
    location offsets, and its source/sink class.

    The de-boxed forwarding plane ({!Dift_parallel.Codec}) builds one
    table per run at load time and shares it with every helper once;
    per-event wire traffic then shrinks to the dynamic-only fields
    plus a site id.  Ids are assigned in function-id order, [base
    (func) + pc], so the table is an array and lookup is one load. *)

open Dift_isa

type row = {
  s_func : Func.t;
  s_pc : int;
  s_instr : Instr.t;
  s_read_offs : int array;
      (** frame-relative location offsets of the registers
          {!Instr.uses} reads, in event order: register [r]'s location
          in frame [f] is [f * frame_stride + reg_off r] *)
  s_write_offs : int array;
      (** same, for the register {!Instr.def} writes (0 or 1 entry) *)
  s_mem_read : bool;  (** a Load: reads end with the memory cell *)
  s_mem_write : bool;  (** a Store: writes are the memory cell *)
  s_input : bool;  (** a taint source ([Sys Read]) *)
  s_sink : bool;
      (** the transfer function reports a sink for every event of this
          site (branch, load/store address, icall target, output,
          check) — tainted or not, so such events can never be
          filtered *)
  s_filterable : bool;  (** neither {!s_input} nor {!s_sink} *)
}

type table

(** Intern every site of the program (one row per static
    instruction). *)
val of_program : Program.t -> table

(** Total number of sites (= static instruction count). *)
val size : table -> int

(** First site id of the named function; its pc [p] site is [base + p].
    @raise Invalid_argument on unknown names. *)
val base : table -> string -> int

(** {!base} without the raise ([None] on unknown names) — the codec's
    fidelity check uses it to detect events foreign to the program. *)
val base_opt : table -> string -> int option

(** [id t ~fname ~pc] = [base t fname + pc].
    @raise Invalid_argument on unknown names. *)
val id : table -> fname:string -> pc:int -> int

val row : table -> int -> row

(** Distance between the same register in consecutive activation
    frames, in location units ([Reg.count lsl 1]). *)
val frame_stride : int

(** Frame-relative location offset of a register. *)
val reg_off : Reg.t -> int

val is_input_instr : Instr.t -> bool
val is_sink_instr : Instr.t -> bool

(** Whether the producer-side liveness filter is allowed to drop
    events of this instruction when their locations cannot intersect
    live taint (see {!Dift_parallel.Livefilter}): true exactly when
    the instruction is neither a source nor a sink. *)
val filterable_instr : Instr.t -> bool
