(** Static-site interning: a dense id per [(function, pc)] site.

    See the interface for the contract.  Row construction derives the
    static shape from {!Instr.uses}/{!Instr.def}, which the machine's
    event builder mirrors for every straight-line instruction — the
    codec verifies the match element-wise per event and falls back to
    an explicit encoding when dynamic shape diverges (call boundaries,
    faults). *)

open Dift_isa

type row = {
  s_func : Func.t;
  s_pc : int;
  s_instr : Instr.t;
  s_read_offs : int array;
  s_write_offs : int array;
  s_mem_read : bool;
  s_mem_write : bool;
  s_input : bool;
  s_sink : bool;
  s_filterable : bool;
}

type table = {
  rows : row array;
  bases : (string, int) Hashtbl.t;
}

(* Register location [r] of frame [f] is
   [((f * Reg.count + index r) lsl 1) lor 1
    = f * frame_stride + reg_off r]. *)
let frame_stride = Reg.count lsl 1
let reg_off r = (Reg.index r lsl 1) lor 1

let is_input_instr = function
  | Instr.Sys (Instr.Read _) -> true
  | _ -> false

let is_sink_instr = function
  | Instr.Br _ | Instr.Load _ | Instr.Store _ | Instr.Icall _
  | Instr.Sys (Instr.Write _)
  | Instr.Sys (Instr.Check _) ->
      true
  | _ -> false

(* A site whose events the producer-side liveness filter may drop when
   their locations cannot intersect live taint: neither a source (the
   engine counts sources and injects taint there) nor a sink (the sink
   handler fires for every sink event, tainted or not — the trace hash
   mixes them all). *)
let filterable_instr i = not (is_input_instr i || is_sink_instr i)

let row_of func pc instr =
  {
    s_func = func;
    s_pc = pc;
    s_instr = instr;
    s_read_offs = Array.of_list (List.map reg_off (Instr.uses instr));
    s_write_offs =
      (match Instr.def instr with Some d -> [| reg_off d |] | None -> [||]);
    s_mem_read = (match instr with Instr.Load _ -> true | _ -> false);
    s_mem_write = (match instr with Instr.Store _ -> true | _ -> false);
    s_input = is_input_instr instr;
    s_sink = is_sink_instr instr;
    s_filterable = filterable_instr instr;
  }

let of_program p =
  let funcs = Program.functions p in
  let bases = Hashtbl.create 16 in
  let total =
    List.fold_left
      (fun acc (f : Func.t) ->
        Hashtbl.replace bases f.Func.name acc;
        acc + Array.length f.Func.body)
      0 funcs
  in
  (* programs have at least one function with at least one instruction
     (Program.make / Func.make validate that) *)
  let f0 = List.hd funcs in
  let rows = Array.make total (row_of f0 0 f0.Func.body.(0)) in
  List.iter
    (fun (f : Func.t) ->
      let base = Hashtbl.find bases f.Func.name in
      Array.iteri (fun pc instr -> rows.(base + pc) <- row_of f pc instr)
        f.Func.body)
    funcs;
  { rows; bases }

let size t = Array.length t.rows

let base_opt t fname = Hashtbl.find_opt t.bases fname

let base t fname =
  match base_opt t fname with
  | Some b -> b
  | None -> invalid_arg (Fmt.str "Site.base: unknown function %s" fname)

let id t ~fname ~pc = base t fname + pc
let row t i = t.rows.(i)
