(** Events observed by instrumentation tools.

    One {!exec} record is produced for every executed instruction; it
    carries everything a DBI tool sees: the dynamic instance identity
    (global step number), the static site (function, pc), the locations
    read and written, the effective memory address for loads/stores,
    and the resolved control-flow target. *)

open Dift_isa

type fault_kind =
  | Div_by_zero
  | Invalid_icall of int  (** bad function id used as call target *)
  | Check_failed  (** a [Sys Check] assertion evaluated to zero *)
  | Invalid_free of int
  | Out_of_bounds of int
      (** heap access outside any live block (only with bounds
          checking enabled) *)

type fault = {
  kind : fault_kind;
  at_step : int;
  at_tid : int;
  at_func : string;
  at_pc : int;
}

(** Why a run ended. *)
type outcome =
  | Halted  (** a thread executed [Halt], or all threads finished *)
  | Faulted of fault
  | Deadlocked  (** live threads remain but none is runnable *)
  | Out_of_steps  (** the [max_steps] budget was exhausted *)
  | Stopped of string  (** a tool requested the stop (e.g. attack detected) *)

type exec = {
  step : int;  (** global dynamic instruction count; unique id *)
  tid : int;
  func : Func.t;
  pc : int;
  instr : Instr.t;
  reads : Loc.t list;
  writes : Loc.t list;
  addr : int;  (** effective address of a load/store, or [-1] *)
  next_pc : int;
      (** pc the thread continues at inside the same function, or [-1]
          when control leaves the function (call/ret/halt/exit) *)
  input_index : int;  (** index of the input word consumed, or [-1] *)
  value : int;  (** primary value produced/written, or [0] *)
}

let is_branch e = match e.instr with Instr.Br _ -> true | _ -> false

(* A mutable, array-backed projection of [exec].  The read/write sets
   live in reusable scratch arrays ([v_nreads]/[v_nwrites] valid
   prefixes) so a decoder can refill one view per event without
   allocating; [v_exec] caches the boxed record so that views filled
   {e from} an exec hand the original back for free. *)
type view = {
  mutable v_step : int;
  mutable v_tid : int;
  mutable v_func : Func.t;
  mutable v_pc : int;
  mutable v_instr : Instr.t;
  mutable v_reads : Loc.t array;
  mutable v_nreads : int;
  mutable v_writes : Loc.t array;
  mutable v_nwrites : int;
  mutable v_addr : int;
  mutable v_next_pc : int;
  mutable v_input_index : int;
  mutable v_value : int;
  mutable v_exec : exec option;
}

let view_create ~func ~instr =
  {
    v_step = 0;
    v_tid = 0;
    v_func = func;
    v_pc = 0;
    v_instr = instr;
    v_reads = Array.make 8 0;
    v_nreads = 0;
    v_writes = Array.make 8 0;
    v_nwrites = 0;
    v_addr = -1;
    v_next_pc = -1;
    v_input_index = -1;
    v_value = 0;
    v_exec = None;
  }

(* Blit a loc list into a scratch array, growing it when needed;
   returns the (possibly fresh) array and the filled length. *)
let blit_locs arr (locs : Loc.t list) =
  let n = List.length locs in
  let arr =
    if Array.length arr >= n then arr
    else Array.make (max n ((2 * Array.length arr) + 4)) 0
  in
  let rec go i = function
    | [] -> ()
    | l :: rest ->
        arr.(i) <- l;
        go (i + 1) rest
  in
  go 0 locs;
  (arr, n)

let view_fill v (e : exec) =
  v.v_step <- e.step;
  v.v_tid <- e.tid;
  v.v_func <- e.func;
  v.v_pc <- e.pc;
  v.v_instr <- e.instr;
  let ra, rn = blit_locs v.v_reads e.reads in
  v.v_reads <- ra;
  v.v_nreads <- rn;
  let wa, wn = blit_locs v.v_writes e.writes in
  v.v_writes <- wa;
  v.v_nwrites <- wn;
  v.v_addr <- e.addr;
  v.v_next_pc <- e.next_pc;
  v.v_input_index <- e.input_index;
  v.v_value <- e.value;
  v.v_exec <- Some e

let view_of_exec e =
  let v = view_create ~func:e.func ~instr:e.instr in
  view_fill v e;
  v

let rec locs_of arr i n = if i >= n then [] else arr.(i) :: locs_of arr (i + 1) n

(* Materialise (and cache) the boxed record.  The loc lists are built
   fresh from the array prefixes, so the result is safe to retain past
   the next [view_fill]. *)
let view_to_exec v =
  match v.v_exec with
  | Some e -> e
  | None ->
      let e =
        {
          step = v.v_step;
          tid = v.v_tid;
          func = v.v_func;
          pc = v.v_pc;
          instr = v.v_instr;
          reads = locs_of v.v_reads 0 v.v_nreads;
          writes = locs_of v.v_writes 0 v.v_nwrites;
          addr = v.v_addr;
          next_pc = v.v_next_pc;
          input_index = v.v_input_index;
          value = v.v_value;
        }
      in
      v.v_exec <- Some e;
      e

let pp_fault_kind ppf = function
  | Div_by_zero -> Fmt.string ppf "division by zero"
  | Invalid_icall id -> Fmt.pf ppf "invalid indirect call (id %d)" id
  | Check_failed -> Fmt.string ppf "check failed"
  | Invalid_free a -> Fmt.pf ppf "invalid free (addr %d)" a
  | Out_of_bounds a -> Fmt.pf ppf "out-of-bounds access (addr %d)" a

let pp_fault ppf f =
  Fmt.pf ppf "%a at step %d (tid %d, %s:%d)" pp_fault_kind f.kind f.at_step
    f.at_tid f.at_func f.at_pc

let pp_outcome ppf = function
  | Halted -> Fmt.string ppf "halted"
  | Faulted f -> Fmt.pf ppf "faulted: %a" pp_fault f
  | Deadlocked -> Fmt.string ppf "deadlocked"
  | Out_of_steps -> Fmt.string ppf "out of steps"
  | Stopped r -> Fmt.pf ppf "stopped: %s" r

let pp_exec ppf e =
  Fmt.pf ppf "#%d t%d %s:%d %a" e.step e.tid e.func.Func.name e.pc Instr.pp
    e.instr
