(** VM observability tool; see the interface for the metric list. *)

open Dift_isa

(* Instruction classes, in the order of [class_names]. *)
let class_names =
  [|
    "nop"; "mov"; "alu"; "cmp"; "load"; "store"; "jmp"; "br"; "call";
    "icall"; "ret"; "halt"; "sys_read"; "sys_write"; "sys_thread";
    "sys_sync"; "sys_heap"; "sys_check"; "sys_mark"; "sys_exit";
  |]

let class_of_instr : Instr.t -> int = function
  | Instr.Nop -> 0
  | Instr.Mov _ -> 1
  | Instr.Binop _ -> 2
  | Instr.Cmp _ -> 3
  | Instr.Load _ -> 4
  | Instr.Store _ -> 5
  | Instr.Jmp _ -> 6
  | Instr.Br _ -> 7
  | Instr.Call _ -> 8
  | Instr.Icall _ -> 9
  | Instr.Ret _ -> 10
  | Instr.Halt -> 11
  | Instr.Sys s -> (
      match s with
      | Instr.Read _ -> 12
      | Instr.Write _ -> 13
      | Instr.Spawn _ | Instr.Join _ | Instr.Tid _ -> 14
      | Instr.Lock _ | Instr.Unlock _ | Instr.Barrier_init _
      | Instr.Barrier _ -> 15
      | Instr.Alloc _ | Instr.Free _ -> 16
      | Instr.Check _ -> 17
      | Instr.Mark _ -> 18
      | Instr.Exit -> 19)

let tool reg =
  let open Dift_obs in
  let execs =
    Registry.counter reg "vm.events.exec" ~help:"instructions executed"
  in
  let faults = Registry.counter reg "vm.events.fault" ~help:"machine faults" in
  let finishes =
    Registry.counter reg "vm.events.finish" ~help:"completed runs"
  in
  let classes =
    Array.map
      (fun n ->
        Registry.counter reg ("vm.instr." ^ n)
          ~help:(n ^ " instructions executed"))
      class_names
  in
  Tool.make ~dispatch_cost:0
    ~on_exec:(fun e ->
      Registry.incr execs;
      Registry.incr classes.(class_of_instr e.Event.instr))
    ~on_fault:(fun _ -> Registry.incr faults)
    ~on_finish:(fun _ -> Registry.incr finishes)
    "obs"

let attach reg m = Machine.attach m (tool reg)

(* 1-in-N sampled instruction-class instants on the calling domain's
   trace track; the first event is always recorded so short runs still
   show up. *)
let trace_tool ?(sample_every = 64) tr =
  if sample_every < 1 then invalid_arg "Obs_tool.trace_tool: sample_every < 1";
  let open Dift_obs in
  let left = ref 1 in
  Tool.make ~dispatch_cost:0
    ~on_exec:(fun e ->
      decr left;
      if !left <= 0 then begin
        left := sample_every;
        Trace.instant tr ~cat:"vm"
          ~args:
            [ ("step", Json.Int e.Event.step); ("pc", Json.Int e.Event.pc) ]
          ("instr." ^ class_names.(class_of_instr e.Event.instr))
      end)
    ~on_fault:(fun f ->
      Trace.instant tr ~cat:"vm"
        ~args:[ ("step", Json.Int f.Event.at_step) ]
        "fault")
    ~on_finish:(fun _ -> Trace.instant tr ~cat:"vm" "finish")
    "obs-trace"

let attach_trace ?sample_every tr m =
  Machine.attach m (trace_tool ?sample_every tr)
