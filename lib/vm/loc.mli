(** Storage locations, encoded as integers for fast hashing.

    A location is either a memory word or a register in a specific
    activation frame.  Register files are per-activation (the VM gives
    every call a fresh frame), so a frame serial number plus a
    register index identifies a register globally and no save/restore
    aliasing can pollute dependence tracking.  Locations are the keys
    of all per-value metadata in the reproduction: shadow taint
    (paper §2.1/§3.3), dependence-graph definitions (§2.1) and
    lineage sets (§3.4). *)

type t = int

(** [mem addr] is the location of memory word [addr].
    @raise Invalid_argument on negative addresses. *)
val mem : int -> t

(** [reg ~frame r] is register [r] of the activation with serial
    [frame]. *)
val reg : frame:int -> Dift_isa.Reg.t -> t

val is_mem : t -> bool
val is_reg : t -> bool

(** Memory address of a memory location.
    @raise Invalid_argument on register locations. *)
val addr : t -> int

(** [(frame_serial, register_index)] of a register location.
    @raise Invalid_argument on memory locations. *)
val frame_reg : t -> int * int

val equal : t -> t -> bool

(** Monomorphic int compare (no generic-comparison call). *)
val compare : t -> t -> int

(** Cheap multiplicative int mix (no generic hashing); non-negative.
    Also suitable for any other int key (the DDG's dynamic step
    numbers use it too): it is just a bit spreader. *)
val hash : t -> int
val pp : t Fmt.t

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = int
module Map : Map.S with type key = int
