(** VM observability: a {!Tool} that counts the machine's event stream
    into a {!Dift_obs.Registry}.

    Metrics (group [vm]; see [docs/observability.md]):

    - [vm.events.exec] / [vm.events.fault] / [vm.events.finish] — one
      counter per tool-event class;
    - [vm.instr.<class>] — the instruction mix: executed instructions
      bucketed into [nop], [mov], [alu], [cmp], [load], [store],
      [jmp], [br], [call], [icall], [ret], [halt], [sys_read],
      [sys_write], [sys_thread], [sys_sync], [sys_heap], [sys_check],
      [sys_mark], [sys_exit].

    The per-event work is two allocation-free atomic increments
    (counters are pre-registered at attach time), so the tool is cheap
    enough to leave attached during measurement runs; like other
    OS-level observers it charges no modelled DBI dispatch cost. *)

(** [attach reg m] registers the [vm.*] counters in [reg] and attaches
    the counting tool to [m].  Attaching to several machines with the
    same registry accumulates into the same counters. *)
val attach : Dift_obs.Registry.t -> Machine.t -> unit

(** The tool itself, for harnesses that manage attachment manually. *)
val tool : Dift_obs.Registry.t -> Tool.t
