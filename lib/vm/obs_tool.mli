(** VM observability: a {!Tool} that counts the machine's event stream
    into a {!Dift_obs.Registry}.

    Metrics (group [vm]; see [docs/observability.md]):

    - [vm.events.exec] / [vm.events.fault] / [vm.events.finish] — one
      counter per tool-event class;
    - [vm.instr.<class>] — the instruction mix: executed instructions
      bucketed into [nop], [mov], [alu], [cmp], [load], [store],
      [jmp], [br], [call], [icall], [ret], [halt], [sys_read],
      [sys_write], [sys_thread], [sys_sync], [sys_heap], [sys_check],
      [sys_mark], [sys_exit].

    The per-event work is two allocation-free atomic increments
    (counters are pre-registered at attach time), so the tool is cheap
    enough to leave attached during measurement runs; like other
    OS-level observers it charges no modelled DBI dispatch cost. *)

(** [attach reg m] registers the [vm.*] counters in [reg] and attaches
    the counting tool to [m].  Attaching to several machines with the
    same registry accumulates into the same counters. *)
val attach : Dift_obs.Registry.t -> Machine.t -> unit

(** The tool itself, for harnesses that manage attachment manually. *)
val tool : Dift_obs.Registry.t -> Tool.t

(** {1 Timeline tracing}

    Where {!attach} aggregates, {!attach_trace} shows the workload's
    phases on the execution timeline: every [sample_every]-th executed
    instruction (default [64]) records an instant event named
    [instr.<class>] (category [vm], with the step and pc as
    arguments) into the calling domain's trace track, so instruction
    phases (e.g. a load-heavy inner loop giving way to output writes)
    are visible between the surrounding spans.  Faults and run
    completion record [fault]/[finish] instants unconditionally. *)

(** [attach_trace tr m] attaches the sampling trace tool to [m].
    @raise Invalid_argument if [sample_every < 1]. *)
val attach_trace : ?sample_every:int -> Dift_obs.Trace.t -> Machine.t -> unit

(** The trace tool itself, for harnesses that manage attachment
    manually.  Each call creates an independent sampling phase. *)
val trace_tool : ?sample_every:int -> Dift_obs.Trace.t -> Tool.t
