(** Events observed by instrumentation tools.

    One {!exec} record is produced for every executed instruction; it
    carries everything a DBI tool sees: the dynamic instance identity
    (global step number), the static site (function, pc), the
    locations read and written, the effective memory address for
    loads/stores, and the resolved control-flow target.

    This is also the paper's §2.1 forwarding set — the memory
    addresses/values, input words and control-flow outcomes a main
    core must send to a DIFT helper core because the helper cannot
    reconstruct them from the static code; the multicore runtimes
    ([Dift_multicore.Helper] simulated, [Dift_parallel] real)
    forward exactly these records. *)

open Dift_isa

type fault_kind =
  | Div_by_zero
  | Invalid_icall of int  (** bad function id used as call target *)
  | Check_failed  (** a [Sys Check] assertion evaluated to zero *)
  | Invalid_free of int
  | Out_of_bounds of int
      (** heap access outside any live block (only with bounds
          checking enabled) *)

type fault = {
  kind : fault_kind;
  at_step : int;  (** the faulting dynamic instruction instance *)
  at_tid : int;
  at_func : string;
  at_pc : int;
}

(** Why a run ended. *)
type outcome =
  | Halted  (** a thread executed [Halt], or all threads finished *)
  | Faulted of fault
  | Deadlocked  (** live threads remain but none is runnable *)
  | Out_of_steps  (** the [max_steps] budget was exhausted *)
  | Stopped of string
      (** a tool requested the stop (e.g. attack detected) *)

type exec = {
  step : int;  (** global dynamic instruction count; unique id *)
  tid : int;
  func : Func.t;
  pc : int;
  instr : Instr.t;
  reads : Loc.t list;
  writes : Loc.t list;
  addr : int;  (** effective address of a load/store, or [-1] *)
  next_pc : int;
      (** pc the thread continues at inside the same function, or
          [-1] when control leaves the function *)
  input_index : int;  (** index of the input word consumed, or [-1] *)
  value : int;  (** primary value produced/written, or [0] *)
}

(** A mutable, array-backed projection of {!exec}, designed to be
    refilled in place: the read/write sets live in reusable scratch
    arrays of which the first [v_nreads]/[v_nwrites] entries are
    valid.  The de-boxed forwarding plane decodes wire batches into
    one reused view per helper (zero allocation per event); the
    engine's transfer function consumes views directly. *)
type view = {
  mutable v_step : int;
  mutable v_tid : int;
  mutable v_func : Func.t;
  mutable v_pc : int;
  mutable v_instr : Instr.t;
  mutable v_reads : Loc.t array;
  mutable v_nreads : int;
  mutable v_writes : Loc.t array;
  mutable v_nwrites : int;
  mutable v_addr : int;
  mutable v_next_pc : int;
  mutable v_input_index : int;
  mutable v_value : int;
  mutable v_exec : exec option;
      (** cache of the boxed record: the original one when the view
          was filled from an exec, or the materialisation built by
          {!view_to_exec}; invalidated by refilling *)
}

(** A blank reusable view ([func]/[instr] are placeholders until the
    first fill). *)
val view_create : func:Func.t -> instr:Instr.t -> view

(** Refill [view] from a boxed record (grows the scratch arrays as
    needed, never shrinks them) and cache the record itself. *)
val view_fill : view -> exec -> unit

(** A fresh view carrying [exec]. *)
val view_of_exec : exec -> view

(** The boxed record for this view: the cached original when there is
    one, otherwise a freshly materialised (and then cached) record
    whose loc lists are copied out of the scratch arrays — safe to
    retain after the view is refilled. *)
val view_to_exec : view -> exec

val is_branch : exec -> bool
val pp_fault_kind : fault_kind Fmt.t
val pp_fault : fault Fmt.t
val pp_outcome : outcome Fmt.t
val pp_exec : exec Fmt.t
