(** Storage locations, encoded as integers for fast hashing.

    A location is either a memory word or a register in a specific
    activation frame.  Register files are per-activation (the VM gives
    every call a fresh frame), so a frame serial number plus a register
    index identifies a register globally and no save/restore aliasing
    can pollute dependence tracking.

    Encoding: memory address [a] is [a lsl 1]; register [r] of frame
    serial [s] is [((s * Reg.count + r) lsl 1) lor 1]. *)

open Dift_isa

type t = int

let mem addr =
  if addr < 0 then invalid_arg "Loc.mem: negative address";
  addr lsl 1

let reg ~frame r = (((frame * Reg.count) + Reg.index r) lsl 1) lor 1

let is_mem l = l land 1 = 0
let is_reg l = l land 1 = 1

(** Memory address of a memory location. *)
let addr l =
  if not (is_mem l) then invalid_arg "Loc.addr: not a memory location";
  l lsr 1

(** [(frame_serial, register_index)] of a register location. *)
let frame_reg l =
  if not (is_reg l) then invalid_arg "Loc.frame_reg: not a register";
  let v = l lsr 1 in
  (v / Reg.count, v mod Reg.count)

let equal (a : t) (b : t) = a = b

(* Monomorphic: [Stdlib.compare] on a known-int type still goes
   through the generic comparison runtime, one call per table probe. *)
let compare (a : t) (b : t) = Int.compare a b

(* Fibonacci (Knuth multiplicative) mix instead of [Hashtbl.hash]:
   one multiply, no trip through the generic hashing runtime.  The
   multiplier spreads the low bits — locations are an int encoding
   whose bit 0 is the mem/reg plane and whose upper bits are
   near-sequential addresses, so identity hashing would leave half the
   buckets of a power-of-two table unused for single-plane key sets.
   [land max_int] keeps the result non-negative as [Hashtbl.Make]
   requires. *)
let hash (l : t) = (l * 0x9E3779B1) land max_int

let pp ppf l =
  if is_mem l then Fmt.pf ppf "mem[%d]" (addr l)
  else
    let f, r = frame_reg l in
    Fmt.pf ppf "f%d:r%d" f r

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
