(** Sparse word-addressed memory with a bump heap allocator.

    Addresses below {!heap_base} form the static/global region, freely
    usable by programs.  [Sys Alloc] hands out blocks from the heap
    region and remembers their extents, which lets applications reason
    about heap overflows and lets the avoidance framework pad
    allocations (an environment patch in the sense of paper §3.2). *)

type block = { base : int; size : int; mutable live : bool }

type t = {
  cells : (int, int) Hashtbl.t;
  blocks : (int, block) Hashtbl.t;  (** keyed by base address *)
  mutable next : int;  (** bump pointer *)
  padding : int;  (** extra slack appended to every allocation *)
}

(** First heap address; everything below is the global region. *)
val heap_base : int

val create : ?padding:int -> unit -> t

(** Unwritten addresses read as zero. *)
val read : t -> int -> int

val write : t -> int -> int -> unit

(** Allocate a block; padding (if configured) becomes part of the
    block, so small overflows land in it harmlessly. *)
val alloc : t -> int -> int

(** [free m base] releases a block; [Error] when [base] is not the
    base address of a live block. *)
val free : t -> int -> (unit, [ `Invalid_free ]) result

(** The live block containing an address, if any. *)
val block_of : t -> int -> block option

(** Is the address inside the allocated heap range? *)
val in_heap : t -> int -> bool

(** Number of addresses currently holding a non-zero value. *)
val footprint : t -> int

(** Deep copy, for checkpointing. *)
val snapshot : t -> t
