(** Helper-thread DIFT on multicores (paper §2.1, "Exploiting
    multicores", after Nagarajan et al., INTERACT'08).

    The application runs on the main core; a helper thread on a second
    core performs the information-flow tracking.  The main core only
    forwards what the helper cannot reconstruct from the static code:
    memory addresses/values, input values and control-flow outcomes.
    The producer/consumer timing between the cores is simulated with a
    bounded queue; the main-core slowdown is the number the paper
    reports (48% for SPEC integer programs with hardware support).

    This module {e simulates} the architecture with a deterministic
    cycle model — it answers "what would this cost on the paper's
    hardware?".  Its counterpart [Dift_parallel.Parallel] {e runs} the
    same architecture for real on OCaml 5 domains (one helper via
    [Parallel.run], N sharded helpers via [Parallel.run_sharded]) and
    reports wall-clock time; the two are compared side by side in
    [README.md], "Simulated vs. real parallelism". *)

open Dift_isa
open Dift_core

type channel =
  | Software  (** shared-memory queue; main core needs DBI *)
  | Hardware  (** dedicated interconnect; forwarding is transparent *)

(** ["software"] or ["hardware"] — the spelling the experiment tables
    and the CLI print. *)
val channel_to_string : channel -> string

type report = {
  channel : channel;
  base_cycles : int;  (** uninstrumented run *)
  main_cycles : int;  (** main core, incl. forwarding and stalls *)
  helper_busy_cycles : int;  (** work done on the helper core *)
  finish_cycles : int;  (** when both cores are done *)
  stall_cycles : int;  (** main-core cycles lost to a full queue *)
  messages : int;
  instructions : int;
  sink_hits : int;  (** taint reaching sinks, observed by the helper *)
}

(** Main-core overhead over native execution (0.48 = 48%). *)
val main_overhead : report -> float

(** End-to-end slowdown over native execution:
    [finish_cycles / base_cycles] — when {e both} cores are done, not
    just the main one.  Compare across channels: the software queue's
    total slowdown is a multiple of the hardware channel's. *)
val total_slowdown : report -> float

(** [run program ~input] simulates one tracked execution and returns
    the cycle accounting.  [channel] picks the forwarding substrate
    (default [Hardware]); [queue_capacity] bounds the inter-core
    queue (small queues make the main core stall on a lagging helper
    — the knob experiment E3 sweeps); [policy] is passed to the
    underlying {!Dift_core.Engine}.  Deterministic: same arguments,
    same report. *)
val run :
  ?channel:channel ->
  ?queue_capacity:int ->
  ?policy:Policy.t ->
  Program.t ->
  input:int array ->
  report

(** Channel, cycle counts, stalls, messages and sink hits on one
    line. *)
val pp_report : report Fmt.t
