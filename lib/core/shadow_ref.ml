(** The hashtable shadow — the original implementation, kept as the
    observational reference for {!Shadow_pages} (differential tests
    replay identical event streams through both and require
    bit-identical taint, sinks and accounting) and as a fallback for
    address spaces too sparse for page-granularity allocation.

    Bottom values are not stored, so the table's size is the number of
    currently tainted locations — which is also what the memory
    overhead measurements count. *)

open Dift_vm

module Make (D : Taint.DOMAIN) = struct
  type elt = D.t

  type t = {
    tbl : D.t Loc.Tbl.t;
    mutable words : int;
        (** running total of [D.words] over the table, maintained
            incrementally so [footprint_words] is O(1) — per-event
            stats sampling would otherwise pay a full-table fold. *)
  }

  let create () = { tbl = Loc.Tbl.create 1024; words = 0 }

  let get t loc =
    match Loc.Tbl.find_opt t.tbl loc with Some v -> v | None -> D.bottom

  let stored_words t loc =
    match Loc.Tbl.find_opt t.tbl loc with Some v -> D.words v | None -> 0

  let set t loc v =
    let old = stored_words t loc in
    if D.is_bottom v then begin
      Loc.Tbl.remove t.tbl loc;
      t.words <- t.words - old
    end
    else begin
      Loc.Tbl.replace t.tbl loc v;
      t.words <- t.words - old + D.words v
    end

  let clear t loc =
    t.words <- t.words - stored_words t loc;
    Loc.Tbl.remove t.tbl loc

  let tainted_locations t = Loc.Tbl.length t.tbl
  let footprint_words t = t.words

  let recomputed_footprint_words t =
    Loc.Tbl.fold (fun _ v acc -> acc + D.words v) t.tbl 0

  let fold f t acc = Loc.Tbl.fold f t.tbl acc
end
