(** ONTRAC: online dependence tracing for debugging (paper §2.1).

    A VM tool that computes the dynamic dependence graph online and
    stores dependence records in a fixed-size circular buffer
    ({!Trace_buffer}), eliminating the offline postprocessing step of
    the two-phase baseline ({!Offline}).  The optimizations from the
    paper are all implemented and individually toggleable:

    - {b O1} — dependences within a basic block that are statically
      inferable from the binary are not stored;
    - {b O2} — the same idea extended to hot multi-block paths
      ("traces"): a cross-block register dependence along a
      frequently executed edge is inferable and not stored;
    - {b O3} — redundant loads (a load reading a location whose
      defining store was already witnessed by an earlier recorded load)
      do not produce new records;
    - {b O4a} — selective tracing of user-specified functions, with
      summary dependences that safely bridge untraced code so chains
      through the specified functions are not broken;
    - {b O4b} — storing only dependences in the forward slice of the
      program inputs.

    The full graph (stored + inferable edges) for the retained window
    is available as a {!Ddg.t} for slicing; byte and cycle accounting
    reflect only the *stored* records, which is exactly the paper's
    accounting (inferable dependences occupy no trace space). *)

open Dift_isa
open Dift_vm

type opts = {
  o1_intra_block : bool;
  o2_traces : bool;
  o2_hot_threshold : int;
      (** executions after which a block transition counts as hot *)
  o3_redundant_loads : bool;
  scope : string list option;
      (** [Some fs]: trace only functions in [fs] (O4a); [None]: all *)
  input_slice_only : bool;  (** O4b *)
  capacity : int;  (** trace buffer capacity in bytes *)
  record_war_waw : bool;
      (** also record WAR/WAW dependences (multithreaded slicing) *)
}

let default_opts =
  {
    o1_intra_block = true;
    o2_traces = true;
    o2_hot_threshold = 32;
    o3_redundant_loads = true;
    scope = None;
    input_slice_only = false;
    capacity = 16 * 1024 * 1024;
    record_war_waw = false;
  }

(** Every optimization off — the unoptimized online tracer. *)
let no_opts =
  {
    default_opts with
    o1_intra_block = false;
    o2_traces = false;
    o3_redundant_loads = false;
    input_slice_only = false;
  }

type stats = {
  mutable instructions : int;
  mutable deps_total : int;
  mutable deps_recorded : int;
  mutable elided_o1 : int;
  mutable elided_o2 : int;
  mutable elided_o3 : int;
  mutable elided_control : int;
  mutable skipped_scope : int;
  mutable skipped_input : int;
  mutable summary_deps : int;
}

type writer_info = { w_step : int; w_fname : string; w_pc : int; w_scoped : bool }

type t = {
  opts : opts;
  static : Static_info.t;
  cd : Control_dep.t;
  ddg : Ddg.t;
  buffer : Trace_buffer.t;
  writer : Encoding.writer;
  stats : stats;
  last_writer : writer_info Loc.Tbl.t;
  readers : int list Loc.Tbl.t;  (** read steps since last write *)
  origins : int list Loc.Tbl.t;  (** traced ancestors (scope mode) *)
  input_tainted : unit Loc.Tbl.t;  (** forward slice of inputs (O4b) *)
  last_recorded_load : int Loc.Tbl.t;  (** mem loc -> witnessed def step *)
  hot_edges : (string * int * int, int) Hashtbl.t;
  prev_block : (int, string * int) Hashtbl.t;  (** tid -> (fname, block) *)
  block_history : (int, (string * int) list) Hashtbl.t;
      (** tid -> recently completed blocks, most recent first *)
  last_control_parent : (int, string * int) Hashtbl.t;
      (** tid -> static site of the last recorded control parent *)
  scope_set : (string, unit) Hashtbl.t option;
  mutable machine : Machine.t option;
  mutable events_since_prune : int;
  mutable tracer : (Dift_obs.Trace.t * int) option;
      (** timeline tracer and its sampling period *)
  mutable trace_left : int;  (** instructions until the next sample *)
}

let create ?(opts = default_opts) program =
  let static = Static_info.create program in
  {
    opts;
    static;
    cd = Control_dep.create static;
    ddg = Ddg.create ();
    buffer = Trace_buffer.create ~capacity:opts.capacity;
    writer = Encoding.writer ();
    stats =
      {
        instructions = 0;
        deps_total = 0;
        deps_recorded = 0;
        elided_o1 = 0;
        elided_o2 = 0;
        elided_o3 = 0;
        elided_control = 0;
        skipped_scope = 0;
        skipped_input = 0;
        summary_deps = 0;
      };
    last_writer = Loc.Tbl.create 4096;
    readers = Loc.Tbl.create 256;
    origins = Loc.Tbl.create 256;
    input_tainted = Loc.Tbl.create 256;
    last_recorded_load = Loc.Tbl.create 256;
    hot_edges = Hashtbl.create 64;
    prev_block = Hashtbl.create 8;
    block_history = Hashtbl.create 8;
    last_control_parent = Hashtbl.create 8;
    scope_set =
      Option.map
        (fun fs ->
          let h = Hashtbl.create (List.length fs) in
          List.iter (fun f -> Hashtbl.replace h f ()) fs;
          h)
        opts.scope;
    machine = None;
    events_since_prune = 0;
    tracer = None;
    trace_left = 0;
  }

let stats t = t.stats
let graph t = t.ddg
let buffer t = t.buffer

(** First step still inside the buffer's retained window. *)
let window_start t = Trace_buffer.window_start t.buffer

(** Length of the retained execution window, in dynamic instructions. *)
let window_length t =
  if t.stats.instructions = 0 then 0
  else max 0 (Ddg.max_step t.ddg - window_start t + 1)

(** Average stored bytes per executed instruction. *)
let bytes_per_instr t =
  if t.stats.instructions = 0 then 0.
  else
    float_of_int (Trace_buffer.total_bytes t.buffer)
    /. float_of_int t.stats.instructions

let in_scope t fname =
  match t.scope_set with None -> true | Some h -> Hashtbl.mem h fname

let charge t n =
  match t.machine with Some m -> Machine.charge m n | None -> ()

(** Sample the circular buffer onto an execution timeline: every
    [sample_every] traced instructions (default [1024]) a
    [trace_buffer.stored_bytes] counter sample shows the buffer
    filling, and every {!Trace_buffer.add} that evicts records emits a
    [trace_buffer.drain] duration span carrying the eviction count —
    so the window wrapping around is visible as drain pulses on an
    otherwise monotone fill ramp.
    @raise Invalid_argument if [sample_every < 1]. *)
let set_trace ?(sample_every = 1024) t tr =
  if sample_every < 1 then invalid_arg "Ontrac.set_trace: sample_every < 1";
  t.tracer <- Some (tr, sample_every);
  t.trace_left <- 1

let trace_sample t =
  match t.tracer with
  | None -> ()
  | Some (tr, every) ->
      t.trace_left <- t.trace_left - 1;
      if t.trace_left <= 0 then begin
        t.trace_left <- every;
        Dift_obs.Trace.counter tr ~cat:"core" "trace_buffer.stored_bytes"
          (Trace_buffer.stored_bytes t.buffer)
      end

(* Append to the circular buffer, timing the append as a drain span
   when it evicted records. *)
let buffer_add t ~use_step ~bytes =
  match t.tracer with
  | None -> Trace_buffer.add t.buffer ~use_step ~bytes
  | Some (tr, _) ->
      let open Dift_obs in
      let evicted0 = Trace_buffer.evicted_records t.buffer in
      let t0 = Trace.now_ns tr in
      Trace_buffer.add t.buffer ~use_step ~bytes;
      let evicted = Trace_buffer.evicted_records t.buffer - evicted0 in
      if evicted > 0 then
        Trace.complete_ns tr ~cat:"core"
          ~args:[ ("evicted", Json.Int evicted) ]
          "trace_buffer.drain" ~start_ns:t0 ~dur_ns:(Trace.now_ns tr - t0)

(* Record a dependence: real byte encoding, buffer accounting, cycle
   charge, and DDG edge. *)
let record t (d : Dep.t) =
  let bytes = Encoding.record_size ~prev_use:t.writer.Encoding.prev_use d in
  Encoding.write t.writer d;
  buffer_add t ~use_step:d.Dep.use_step ~bytes;
  charge t Cost.ontrac_record;
  t.stats.deps_recorded <- t.stats.deps_recorded + 1;
  Ddg.add_dep t.ddg d

(* Add an inferable (elided) dependence to the graph without storing
   bytes. *)
let infer t (d : Dep.t) = Ddg.add_dep t.ddg d

(* -- O4b: forward slice of the inputs --------------------------------- *)

let input_affected t (e : Event.exec) =
  e.Event.input_index >= 0
  || List.exists (fun l -> Loc.Tbl.mem t.input_tainted l) e.Event.reads

let update_input_taint t (e : Event.exec) affected =
  if affected then
    List.iter (fun l -> Loc.Tbl.replace t.input_tainted l ()) e.Event.writes
  else List.iter (fun l -> Loc.Tbl.remove t.input_tainted l) e.Event.writes

(* -- O2: hot-path learning --------------------------------------------- *)

let history_cap = 6

let note_block_transition t (e : Event.exec) =
  let fname = e.Event.func.Func.name in
  let block = Static_info.block_of t.static fname e.Event.pc in
  (match Hashtbl.find_opt t.prev_block e.Event.tid with
  | Some (pf, pb) when pf <> fname || pb <> block ->
      if pf = fname then begin
        let key = (fname, pb, block) in
        let c =
          match Hashtbl.find_opt t.hot_edges key with Some c -> c | None -> 0
        in
        Hashtbl.replace t.hot_edges key (c + 1)
      end;
      let h =
        match Hashtbl.find_opt t.block_history e.Event.tid with
        | Some h -> h
        | None -> []
      in
      let h = (pf, pb) :: h in
      let h =
        if List.length h > history_cap then List.filteri (fun i _ -> i < history_cap) h
        else h
      in
      Hashtbl.replace t.block_history e.Event.tid h
  | Some _ | None -> ());
  Hashtbl.replace t.prev_block e.Event.tid (fname, block);
  block

let hot_edge t fname from_block to_block =
  match Hashtbl.find_opt t.hot_edges (fname, from_block, to_block) with
  | Some c -> c >= t.opts.o2_hot_threshold
  | None -> false

(* -- classification of one data dependence ----------------------------- *)

type verdict =
  | Record
  | Elide_o1
  | Elide_o2
  | Elide_o3

(* O2: the dependence is inferable along a hot multi-block path when
   the writer's block appears in the thread's recent block history, is
   the last definition of the register in that block, every block in
   between is definition-free for the register, and every transition on
   the path is hot (a learned "trace" in the paper's sense). *)
let o2_inferable t ~fname ~reg ~(w : writer_info) ~block ~history =
  (* guard before the block lookup: [w.w_pc] indexes [fname]'s CFG, so
     a writer from another function (e.g. a callee's [Ret] defining the
     caller's return register) would index out of bounds *)
  w.w_fname = fname
  &&
  let w_block = Static_info.block_of t.static fname w.w_pc in
  let rec walk newer = function
    | [] -> false
    | (hf, hb) :: older ->
        hf = fname
        && hot_edge t fname hb newer
        &&
        (* matches instead of [= Some _] / [= None]: these sit on the
           per-event elision path and must not call the polymorphic
           comparator *)
        if hb = w_block then
          match Static_info.block_last_def t.static fname ~block:hb ~reg with
          | Some pc -> pc = w.w_pc
          | None -> false
        else (
          match Static_info.block_last_def t.static fname ~block:hb ~reg with
          | None -> walk hb older
          | Some _ -> false)
  in
  walk block history

let classify t (e : Event.exec) ~loc ~(w : writer_info) ~block ~history =
  let fname = e.Event.func.Func.name in
  if Loc.is_reg loc then begin
    let _, reg_idx = Loc.frame_reg loc in
    let reg = Reg.make reg_idx in
    let o1_ok =
      t.opts.o1_intra_block && w.w_fname = fname
      &&
      match
        Static_info.reaching_def_in_block t.static fname ~pc:e.Event.pc ~reg
      with
      | Some pc -> pc = w.w_pc
      | None -> false
    in
    if o1_ok then Elide_o1
    else if t.opts.o2_traces && o2_inferable t ~fname ~reg ~w ~block ~history
    then Elide_o2
    else Record
  end
  else if
    t.opts.o3_redundant_loads
    && (match e.Event.instr with Instr.Load _ -> true | _ -> false)
    && (match Loc.Tbl.find_opt t.last_recorded_load loc with
       | Some s -> s = w.w_step
       | None -> false)
  then Elide_o3
  else Record

(* -- the per-event work ------------------------------------------------- *)

let process t (e : Event.exec) =
  t.stats.instructions <- t.stats.instructions + 1;
  trace_sample t;
  let parent = Control_dep.process t.cd e in
  let fname = e.Event.func.Func.name in
  let scoped = in_scope t fname in
  let affected =
    if t.opts.input_slice_only then input_affected t e else true
  in
  let block = note_block_transition t e in
  let history =
    match Hashtbl.find_opt t.block_history e.Event.tid with
    | Some h -> h
    | None -> []
  in
  (* The node itself. *)
  if scoped then
    Ddg.add_node t.ddg ~step:e.Event.step ~tid:e.Event.tid ~fname
      ~pc:e.Event.pc ~input_index:e.Event.input_index
      ~is_output:
        (match e.Event.instr with
        | Instr.Sys (Instr.Write _) -> true
        | _ -> false);
  (* Data dependences, one per read location. *)
  List.iter
    (fun loc ->
      match Loc.Tbl.find_opt t.last_writer loc with
      | None -> ()
      | Some w ->
          t.stats.deps_total <- t.stats.deps_total + 1;
          if not scoped then
            t.stats.skipped_scope <- t.stats.skipped_scope + 1
          else if not affected then
            t.stats.skipped_input <- t.stats.skipped_input + 1
          else if (not w.w_scoped) && Option.is_some t.scope_set then begin
            (* Bridge untraced code with summary dependences to the
               last traced ancestors of this value. *)
            let os =
              match Loc.Tbl.find_opt t.origins loc with
              | Some os -> os
              | None -> []
            in
            List.iter
              (fun def_step ->
                t.stats.summary_deps <- t.stats.summary_deps + 1;
                record t
                  { Dep.kind = Dep.Summary; def_step; use_step = e.Event.step })
              os
          end
          else begin
            let d =
              { Dep.kind = Dep.Data; def_step = w.w_step;
                use_step = e.Event.step }
            in
            match classify t e ~loc ~w ~block ~history with
            | Record ->
                record t d;
                let is_load =
                  match e.Event.instr with
                  | Instr.Load _ -> true
                  | _ -> false
                in
                if t.opts.o3_redundant_loads && is_load then
                  Loc.Tbl.replace t.last_recorded_load loc w.w_step
            | Elide_o1 ->
                t.stats.elided_o1 <- t.stats.elided_o1 + 1;
                infer t d
            | Elide_o2 ->
                t.stats.elided_o2 <- t.stats.elided_o2 + 1;
                infer t d
            | Elide_o3 ->
                t.stats.elided_o3 <- t.stats.elided_o3 + 1;
                infer t d
          end)
    e.Event.reads;
  (* Control dependence: a record is stored only when the controlling
     *static* branch changes.  Successive instances of the same branch
     (loop iterations) are reconstructible from the compact control
     trace plus the static CFG, so they cost no dependence bytes —
     this is where the whole-execution-trace compression of [18]
     pays. *)
  (match parent with
  | Some p when scoped && affected ->
      let d = { Dep.kind = Dep.Control; def_step = p; use_step = e.Event.step }
      in
      t.stats.deps_total <- t.stats.deps_total + 1;
      let parent_site =
        match Ddg.node t.ddg p with
        | Some n -> Some (n.Ddg.fname, n.Ddg.pc)
        | None -> None
      in
      let same_static =
        (* field-wise match, not [= Some site]: a polymorphic compare
           of [(string * int) option] per control dependence would
           dominate the elision it pays for *)
        match parent_site with
        | Some (sf, spc) -> (
            match Hashtbl.find_opt t.last_control_parent e.Event.tid with
            | Some (lf, lpc) -> spc = lpc && String.equal sf lf
            | None -> false)
        | None -> false
      in
      if same_static then begin
        t.stats.elided_control <- t.stats.elided_control + 1;
        infer t d
      end
      else begin
        (match parent_site with
        | Some site -> Hashtbl.replace t.last_control_parent e.Event.tid site
        | None -> ());
        record t d
      end
  | Some _ | None -> ());
  (* WAR / WAW (multithreaded slicing support). *)
  if t.opts.record_war_waw then begin
    List.iter
      (fun loc ->
        if Loc.is_mem loc then begin
          (match Loc.Tbl.find_opt t.readers loc with
          | Some rs when scoped ->
              List.iter
                (fun r ->
                  t.stats.deps_total <- t.stats.deps_total + 1;
                  record t
                    { Dep.kind = Dep.War; def_step = r; use_step = e.Event.step })
                rs
          | Some _ | None -> ());
          Loc.Tbl.remove t.readers loc;
          match Loc.Tbl.find_opt t.last_writer loc with
          | Some w when scoped && w.w_scoped ->
              t.stats.deps_total <- t.stats.deps_total + 1;
              record t
                { Dep.kind = Dep.Waw; def_step = w.w_step;
                  use_step = e.Event.step }
          | Some _ | None -> ()
        end)
      e.Event.writes;
    List.iter
      (fun loc ->
        if Loc.is_mem loc then
          let cur =
            match Loc.Tbl.find_opt t.readers loc with
            | Some rs -> rs
            | None -> []
          in
          Loc.Tbl.replace t.readers loc (e.Event.step :: cur))
      e.Event.reads
  end;
  (* Update writer bookkeeping. *)
  List.iter
    (fun loc ->
      Loc.Tbl.replace t.last_writer loc
        { w_step = e.Event.step; w_fname = fname; w_pc = e.Event.pc;
          w_scoped = scoped };
      Loc.Tbl.remove t.last_recorded_load loc;
      if Option.is_some t.scope_set then
        if scoped then Loc.Tbl.replace t.origins loc [ e.Event.step ]
        else begin
          (* Untraced write: carry forward the traced ancestors of the
             values it read. *)
          let os =
            List.fold_left
              (fun acc l ->
                match Loc.Tbl.find_opt t.origins l with
                | Some os ->
                    List.fold_left
                      (fun acc o -> if List.mem o acc then acc else o :: acc)
                      acc os
                | None -> acc)
              [] e.Event.reads
          in
          Loc.Tbl.replace t.origins loc os
        end)
    e.Event.writes;
  if t.opts.input_slice_only then update_input_taint t e affected;
  (* Periodic pruning keeps the in-memory graph matched to the buffer
     window. *)
  t.events_since_prune <- t.events_since_prune + 1;
  if t.events_since_prune >= 65536 then begin
    t.events_since_prune <- 0;
    Ddg.prune t.ddg ~window_start:(window_start t)
  end

(** Attach to a machine; all modelled overhead is charged there. *)
let attach t machine =
  t.machine <- Some machine;
  Machine.attach machine (Tool.make ~on_exec:(process t) "ontrac")

(** Attach with an event filter: only events satisfying [keep] are
    traced (the execution-reduction replay gates tracing to the
    failure-relevant requests this way).  Instrumentation is selective,
    so the DBI dispatch cost is paid per *kept* event rather than per
    instruction. *)
let attach_filtered t machine ~keep =
  t.machine <- Some machine;
  Machine.attach machine
    (Tool.make ~dispatch_cost:0
       ~on_exec:(fun e ->
         if keep e then begin
           Machine.charge machine Cost.dbi_dispatch;
           process t e
         end)
       "ontrac-gated")

(** Prune the graph to the final window and return it with the window
    start (to be called after the run). *)
let final_graph t =
  Ddg.prune t.ddg ~window_start:(window_start t);
  (t.ddg, window_start t)

(** Expose the tracer through an observability registry (derived
    gauges over the live stats; nothing is added to the hot path). *)
let register_obs t reg =
  let open Dift_obs in
  let g name help f = Registry.gauge_fn reg name ~help f in
  let s = t.stats in
  g "core.ontrac.instructions" "instructions traced" (fun () ->
      s.instructions);
  g "core.ontrac.deps_total" "dependences seen" (fun () -> s.deps_total);
  g "core.ontrac.deps_recorded" "dependences stored" (fun () ->
      s.deps_recorded);
  g "core.ontrac.elided_o1" "elided: intra-block (O1)" (fun () ->
      s.elided_o1);
  g "core.ontrac.elided_o2" "elided: hot traces (O2)" (fun () ->
      s.elided_o2);
  g "core.ontrac.elided_o3" "elided: redundant loads (O3)" (fun () ->
      s.elided_o3);
  g "core.ontrac.elided_control" "elided: repeated control parents"
    (fun () -> s.elided_control);
  g "core.ontrac.summary_deps" "summary dependences (O4a)" (fun () ->
      s.summary_deps);
  g "core.ontrac.bytes_per_kinstr"
    "stored trace bytes per 1000 instructions (the paper's trace rate)"
    (fun () ->
      if s.instructions = 0 then 0
      else Trace_buffer.total_bytes t.buffer * 1000 / s.instructions);
  g "core.ontrac.window_length" "retained window, dynamic instructions"
    (fun () -> window_length t);
  g "core.trace_buffer.capacity_bytes" "buffer byte budget" (fun () ->
      t.opts.capacity);
  g "core.trace_buffer.stored_bytes" "bytes currently buffered" (fun () ->
      Trace_buffer.stored_bytes t.buffer);
  g "core.trace_buffer.total_bytes" "bytes ever appended" (fun () ->
      Trace_buffer.total_bytes t.buffer);
  g "core.trace_buffer.stored_records" "records currently buffered"
    (fun () -> Trace_buffer.stored_records t.buffer);
  g "core.trace_buffer.total_records" "records ever appended" (fun () ->
      Trace_buffer.total_records t.buffer);
  g "core.trace_buffer.evicted_records" "records evicted" (fun () ->
      Trace_buffer.evicted_records t.buffer);
  g "core.trace_buffer.window_start" "first retained step" (fun () ->
      Trace_buffer.window_start t.buffer)

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "@[<v>instructions: %d@,deps total: %d@,deps recorded: %d@,elided O1: \
     %d@,elided O2: %d@,elided O3: %d@,elided control: %d@,skipped scope: \
     %d@,skipped input: %d@,summary deps: %d@]"
    s.instructions s.deps_total s.deps_recorded s.elided_o1 s.elided_o2
    s.elided_o3 s.elided_control s.skipped_scope s.skipped_input
    s.summary_deps
