(** Flat paged shadow memory — the default shadow implementation.

    Hardware DIFT proposals get their speed from tag memories indexed
    directly by address instead of associative lookups; the integer
    {!Dift_vm.Loc} encoding was designed to enable exactly that
    substitution in software.  A location is [(index lsl 1) lor plane]
    where bit 0 selects the plane (memory words vs. register slots)
    and the upper bits are a dense index, so the shadow is two
    two-level page tables: a growable directory of 4096-entry value
    pages, allocated on first non-bottom touch.  Every [get]/[set] is
    a shift, a mask and two array probes — no hashing, no comparison
    calls, and no allocation once the touched pages exist.

    Bottom is the in-page "empty" sentinel: it is never counted, and
    storing it clears the entry (without ever allocating a page, so
    clearing untouched locations is free).  [tainted_locations] and
    [footprint_words] are maintained incrementally, exactly like the
    hashtable reference ({!Shadow_ref}), with which this module must
    stay observationally identical — the differential suite replays
    random event streams through both.

    Trade-off: a page costs 4096 words even if one slot is tainted.
    Dense address use (the VM's contiguous memory, consecutive frame
    serials) amortises that; a workload tainting a handful of wildly
    scattered addresses should select {!Shadow_ref} via
    {!Engine.Make_over} instead. *)

module Make (D : Taint.DOMAIN) = struct
  type elt = D.t

  let page_bits = 12
  let page_size = 1 lsl page_bits
  let page_mask = page_size - 1

  (* The absent-page marker: physically unique (compared with [==]),
     safe to share since it is never written. *)
  let no_page : D.t array = [||]

  type plane = { mutable dir : D.t array array }

  type t = {
    mem : plane;  (** even locations: memory words *)
    reg : plane;  (** odd locations: register slots *)
    mutable count : int;  (** non-bottom entries *)
    mutable words : int;  (** running [D.words] total over them *)
  }

  let create () =
    { mem = { dir = [||] }; reg = { dir = [||] }; count = 0; words = 0 }

  let get t loc =
    let p = if loc land 1 = 0 then t.mem else t.reg in
    let idx = loc lsr 1 in
    let pi = idx lsr page_bits in
    if pi >= Array.length p.dir then D.bottom
    else
      let page = Array.unsafe_get p.dir pi in
      if page == no_page then D.bottom
      else
        (* in bounds: [land page_mask < page_size = Array.length page] *)
        Array.unsafe_get page (idx land page_mask)

  let grow p pi =
    let n = Array.length p.dir in
    let n' = max 8 (max (pi + 1) (2 * n)) in
    let dir' = Array.make n' no_page in
    Array.blit p.dir 0 dir' 0 n;
    p.dir <- dir'

  let fresh_page p pi =
    let page = Array.make page_size D.bottom in
    p.dir.(pi) <- page;
    page

  (* One probe finds both the old value and the slot to write — the
     hashtable implementation pays a lookup for the old value and a
     second for the replace/remove. *)
  let set_generic t loc v =
    let p = if loc land 1 = 0 then t.mem else t.reg in
    let idx = loc lsr 1 in
    let pi = idx lsr page_bits in
    let page =
      if pi < Array.length p.dir then Array.unsafe_get p.dir pi
      else no_page
    in
    if page == no_page then begin
      (* absent page: the old value is bottom.  Storing bottom into an
         absent page stays a no-op — no page is allocated for it. *)
      if not (D.is_bottom v) then begin
        if pi >= Array.length p.dir then grow p pi;
        let page = fresh_page p pi in
        Array.unsafe_set page (idx land page_mask) v;
        t.count <- t.count + 1;
        t.words <- t.words + D.words v
      end
    end
    else begin
      let slot = idx land page_mask in
      let old = Array.unsafe_get page slot in
      Array.unsafe_set page slot v;
      if D.is_bottom old then begin
        if not (D.is_bottom v) then begin
          t.count <- t.count + 1;
          t.words <- t.words + D.words v
        end
      end
      else if D.is_bottom v then begin
        t.count <- t.count - 1;
        t.words <- t.words - D.words old
      end
      else t.words <- t.words - D.words old + D.words v
    end

  (* Monomorphic store for the Bool domain, selected once at functor
     application: bottom is [false] and every tainted value costs one
     word, so the bottom tests and the words accounting become plain
     bool compares instead of three calls through the functor
     parameter. *)
  let set : t -> int -> D.t -> unit =
    match D.as_bool with
    | None -> set_generic
    | Some Taint.Refl ->
        fun t loc (v : bool) ->
          let p = if loc land 1 = 0 then t.mem else t.reg in
          let idx = loc lsr 1 in
          let pi = idx lsr page_bits in
          let page =
            if pi < Array.length p.dir then Array.unsafe_get p.dir pi
            else no_page
          in
          if page == no_page then begin
            if v then begin
              if pi >= Array.length p.dir then grow p pi;
              let page = fresh_page p pi in
              Array.unsafe_set page (idx land page_mask) v;
              t.count <- t.count + 1;
              t.words <- t.words + 1
            end
          end
          else begin
            let slot = idx land page_mask in
            let old : bool = Array.unsafe_get page slot in
            if old <> v then begin
              Array.unsafe_set page slot v;
              let d = if v then 1 else -1 in
              t.count <- t.count + d;
              t.words <- t.words + d
            end
          end

  let clear t loc = set t loc D.bottom
  let tainted_locations t = t.count
  let footprint_words t = t.words

  let fold_plane plane_bit p f acc =
    let acc = ref acc in
    Array.iteri
      (fun pi page ->
        if page != no_page then
          for s = 0 to page_size - 1 do
            let v = Array.unsafe_get page s in
            if not (D.is_bottom v) then
              let idx = (pi lsl page_bits) lor s in
              acc := f ((idx lsl 1) lor plane_bit) v !acc
          done)
      p.dir;
    !acc

  let fold f t acc = fold_plane 1 t.reg f (fold_plane 0 t.mem f acc)

  let recomputed_footprint_words t =
    fold (fun _ v acc -> acc + D.words v) t 0
end
