(** The shadow-state interface both implementations satisfy.

    A shadow maps every storage location to a taint value; untracked
    locations read as the domain's bottom.  Two implementations exist
    behind this signature:

    - {!Shadow_pages.Make} — a flat two-level page table indexed
      directly by the integer {!Dift_vm.Loc} encoding (the default;
      O(1) array probes, no hashing, no allocation on the hot path);
    - {!Shadow_ref.Make} — the original hashtable, kept as the
      differential-testing reference and as a fallback for extremely
      sparse address spaces where page-granularity allocation would
      waste memory.

    {!Shadow.Make} selects the paged implementation; engines that want
    a specific one take any [IMPL] through {!Engine.Make_over}. *)

open Dift_vm

module type S = sig
  type t

  (** The domain's taint value type ([D.t] of the functor argument). *)
  type elt

  val create : unit -> t

  (** Untracked locations read as bottom. *)
  val get : t -> Loc.t -> elt

  (** Storing bottom clears the entry. *)
  val set : t -> Loc.t -> elt -> unit

  val clear : t -> Loc.t -> unit

  (** Number of tainted (non-bottom) locations. *)
  val tainted_locations : t -> int

  (** Total shadow footprint in words, per the domain's accounting.
      O(1): maintained incrementally by {!set}/{!clear}, so stats
      sampling may call it per event. *)
  val footprint_words : t -> int

  (** Recompute the footprint by folding over the whole shadow — the
      O(n) definition {!footprint_words} must always agree with.
      Debug cross-check only. *)
  val recomputed_footprint_words : t -> int

  (** Fold over the non-bottom entries.  Iteration order is
      unspecified and differs between implementations. *)
  val fold : (Loc.t -> elt -> 'a -> 'a) -> t -> 'a -> 'a
end

(** A shadow implementation: a functor from a taint domain to a shadow
    over that domain's values. *)
module type IMPL = functor (D : Taint.DOMAIN) -> S with type elt = D.t
