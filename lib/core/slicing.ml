(** Dynamic slicing over a dependence graph.

    A backward slice from a criterion (one or more dynamic instruction
    instances) is the transitive closure over dependence edges; a
    forward slice follows the edges in the other direction.  Slices are
    reported both as dynamic steps and as static statements (function,
    pc) — fault-location metrics are statement-level. *)

module Int_set = Set.Make (Int)

module Site_set = Set.Make (struct
  type t = string * int

  let compare = compare
end)

type t = {
  steps : Int_set.t;
  sites : Site_set.t;
}

let size s = Int_set.cardinal s.steps
let num_sites s = Site_set.cardinal s.sites
let mem_step s step = Int_set.mem step s.steps
let mem_site s site = Site_set.mem site s.sites
let steps s = Int_set.elements s.steps
let sites s = Site_set.elements s.sites

let empty = { steps = Int_set.empty; sites = Site_set.empty }

(* Which edge kinds a traversal follows. *)
let default_kinds = [ Dep.Data; Dep.Control; Dep.Summary ]

(** All edge kinds, including WAR/WAW — the multithreaded extension
    (paper §3.1) that makes data races visible to slicing. *)
let multithreaded_kinds =
  [ Dep.Data; Dep.Control; Dep.Summary; Dep.War; Dep.Waw ]

let add_node acc (n : Ddg.node) =
  {
    steps = Int_set.add n.Ddg.step acc.steps;
    sites = Site_set.add (n.Ddg.fname, n.Ddg.pc) acc.sites;
  }

(** Backward dynamic slice of the graph from the given criterion
    steps.  Steps below [window_start] (evicted from the trace buffer)
    are unreachable — the slice silently stops there, which models the
    bounded execution history of ONTRAC's buffer. *)
let backward ?(kinds = default_kinds) ?(window_start = 0) g ~criterion =
  let visited = Ddg.Itbl.create 256 in
  let acc = ref empty in
  let stack = Stack.create () in
  List.iter (fun s -> Stack.push s stack) criterion;
  while not (Stack.is_empty stack) do
    let s = Stack.pop stack in
    if (not (Ddg.Itbl.mem visited s)) && s >= window_start then begin
      Ddg.Itbl.replace visited s ();
      match Ddg.node g s with
      | None -> ()
      | Some n ->
          acc := add_node !acc n;
          List.iter
            (fun (k, def) ->
              if List.mem k kinds && not (Ddg.Itbl.mem visited def) then
                Stack.push def stack)
            n.Ddg.preds
    end
  done;
  !acc

(** Forward dynamic slice: everything that transitively depends on the
    criterion steps. *)
let forward ?(kinds = default_kinds) ?(window_start = 0) g ~criterion =
  let succ = Ddg.successors g in
  let visited = Ddg.Itbl.create 256 in
  let acc = ref empty in
  let stack = Stack.create () in
  List.iter (fun s -> Stack.push s stack) criterion;
  while not (Stack.is_empty stack) do
    let s = Stack.pop stack in
    if (not (Ddg.Itbl.mem visited s)) && s >= window_start then begin
      Ddg.Itbl.replace visited s ();
      match Ddg.node g s with
      | None -> ()
      | Some n ->
          acc := add_node !acc n;
          let outs =
            match Ddg.Itbl.find_opt succ s with Some l -> l | None -> []
          in
          List.iter
            (fun (k, use) ->
              if List.mem k kinds && not (Ddg.Itbl.mem visited use) then
                Stack.push use stack)
            outs
    end
  done;
  !acc

(** Intersection of two slices. *)
let inter a b =
  {
    steps = Int_set.inter a.steps b.steps;
    sites = Site_set.inter a.sites b.sites;
  }

(** A failure-inducing chop (Gupta et al., ASE'05 [1]): the
    intersection of the forward slice of the failure-inducing input
    and the backward slice of the failure.  Statements outside the
    chop either never saw the bad input or never influenced the
    failure, so the chop is a sharper fault-candidate set than either
    slice alone. *)
let chop ?kinds ?window_start g ~source ~sink =
  let fwd = forward ?kinds ?window_start g ~criterion:source in
  let bwd = backward ?kinds ?window_start g ~criterion:sink in
  inter fwd bwd

(** The last output event in the graph, a common slicing criterion
    ("why is this output wrong?"). *)
let last_output g =
  let best = ref None in
  Ddg.iter_nodes
    (fun n ->
      if n.Ddg.is_output then
        match !best with
        | Some (b : Ddg.node) when b.Ddg.step >= n.Ddg.step -> ()
        | Some _ | None -> best := Some n)
    g;
  Option.map (fun (n : Ddg.node) -> n.Ddg.step) !best

let pp ppf s =
  Fmt.pf ppf "slice: %d dynamic steps, %d static sites" (size s)
    (num_sites s)
