(** The generic DIFT engine.

    Instantiated with a {!Taint.DOMAIN}, the engine is a VM tool that
    maintains shadow state for every location, injects taint at input
    reads, propagates it per the configured {!Policy}, and reports
    flows into sinks (indirect-call targets, outputs, assertions,
    pointers, branches) to a client-provided handler.

    This is the single propagation core all four of the paper's
    application areas instantiate: boolean taint for detection, PC
    taint for bug location, input sets for lineage.

    The per-event transfer function is allocation-free for immediate
    domains: source joins and write fans are static recursive loops
    (no closures), list emptiness is matched (no polymorphic
    comparison), the per-thread control state is cached by tid (no
    hashtable probe per event), and the Bool domain gets a
    short-circuiting monomorphic join selected once at functor
    application via {!Taint.DOMAIN.as_bool}. *)

open Dift_isa
open Dift_vm

type sink =
  | Sink_icall  (** indirect-call target *)
  | Sink_output  (** [Sys Write] operand *)
  | Sink_check  (** [Sys Check] operand *)
  | Sink_store_address  (** pointer used by a store *)
  | Sink_load_address  (** pointer used by a load *)
  | Sink_branch  (** branch condition *)

let sink_to_string = function
  | Sink_icall -> "icall-target"
  | Sink_output -> "output"
  | Sink_check -> "check"
  | Sink_store_address -> "store-address"
  | Sink_load_address -> "load-address"
  | Sink_branch -> "branch"

let pp_sink ppf s = Fmt.string ppf (sink_to_string s)

type stats = {
  mutable events : int;
  mutable sources : int;
  mutable sink_hits : int;  (** sinks reached by non-bottom taint *)
}

module Make_over (Shadow_impl : Shadow.IMPL) (D : Taint.DOMAIN) = struct
  module Sh = Shadow_impl (D)

  (* -- monomorphic fast paths, selected once at functor application -- *)

  (* For the Bool domain the fold over source locations short-circuits
     at the first tainted one and makes no calls through the functor
     parameter; every other domain pays the generic join loop (still
     closure-free).  Sources are the [i..n) prefix slice of a view's
     scratch array. *)
  let joined_arr : Sh.t -> Loc.t array -> int -> int -> D.t =
    match D.as_bool with
    | Some Taint.Refl ->
        let rec any sh (arr : Loc.t array) i n =
          i < n && (Sh.get sh arr.(i) || any sh arr (i + 1) n)
        in
        any
    | None ->
        let rec go sh acc (arr : Loc.t array) i n =
          if i >= n then acc else go sh (D.join acc (Sh.get sh arr.(i))) arr (i + 1) n
        in
        fun sh arr i n -> go sh D.bottom arr i n

  (* Join restricted to one plane of the slice: [mem = true] keeps
     memory locations, [mem = false] keeps registers (how a Load's
     reads split into value vs. address sources). *)
  let joined_plane : Sh.t -> Loc.t array -> int -> mem:bool -> D.t =
    match D.as_bool with
    | Some Taint.Refl ->
        let rec any sh (arr : Loc.t array) i n mem =
          i < n
          && ((Loc.is_mem arr.(i) = mem && Sh.get sh arr.(i))
             || any sh arr (i + 1) n mem)
        in
        fun sh arr n ~mem -> any sh arr 0 n mem
    | None ->
        let rec go sh acc (arr : Loc.t array) i n mem =
          if i >= n then acc
          else
            let acc =
              if Loc.is_mem arr.(i) = mem then D.join acc (Sh.get sh arr.(i))
              else acc
            in
            go sh acc arr (i + 1) n mem
        in
        fun sh arr n ~mem -> go sh D.bottom arr 0 n mem

  let join2 : D.t -> D.t -> D.t =
    match D.as_bool with Some Taint.Refl -> ( || ) | None -> D.join

  (* Write fan-out without a per-event closure. *)
  let set_all sh v (arr : Loc.t array) n =
    for i = 0 to n - 1 do
      Sh.set sh arr.(i) v
    done

  type control_frame = {
    mutable regions : (int * D.t) list;  (** (close_at_pc, taint) *)
    base : D.t;  (** control taint inherited through the call *)
  }

  type thread_control = { mutable cframes : control_frame list }

  type t = {
    policy : Policy.t;
    static : Static_info.t;
    shadow : Sh.t;
    stats : stats;
    mutable sink_handler : (sink -> D.t -> Event.exec -> unit) option;
    mutable sink_handler_view : (sink -> D.t -> Event.view -> unit) option;
    mutable scratch : Event.view option;
        (** reused by {!process} to present boxed records to the
            view-based transfer function without per-event copies of
            anything but the loc lists *)
    control : (int, thread_control) Hashtbl.t;
    mutable ctl_tid : int;  (** tid of [ctl_tc], or [min_int] *)
    mutable ctl_tc : thread_control;
        (** per-thread control state cache: workloads are dominated by
            long single-thread stretches, so the per-event
            [Hashtbl.find_opt] (and its [Some] allocation) almost
            always collapses into one int compare *)
    pending_spawn_taint : (int, D.t) Hashtbl.t;  (** tid -> control taint *)
    mutable charge : int -> unit;
    mutable tracer : (Dift_obs.Trace.t * int) option;
        (** timeline tracer and its sampling period *)
    mutable trace_left : int;  (** events until the next sample *)
    mutable flight : (Dift_obs.Flight.t * int) option;
        (** flight recorder and its milestone period *)
    mutable flight_left : int;  (** events until the next milestone *)
  }

  let create ?(policy = Policy.default) program =
    {
      policy;
      static = Static_info.create program;
      shadow = Sh.create ();
      stats = { events = 0; sources = 0; sink_hits = 0 };
      sink_handler = None;
      sink_handler_view = None;
      scratch = None;
      control = Hashtbl.create 8;
      ctl_tid = min_int;
      ctl_tc = { cframes = [] };
      pending_spawn_taint = Hashtbl.create 8;
      charge = ignore;
      tracer = None;
      trace_left = 0;
      flight = None;
      flight_left = 0;
    }

  let on_sink t f = t.sink_handler <- Some f

  (* The allocation-free variant: the handler sees the live view
     (valid only for the duration of the call — call
     [Event.view_to_exec] to retain).  Both handlers may be installed;
     the view handler runs first. *)
  let on_sink_view t f = t.sink_handler_view <- Some f

  (** Redirect overhead charging (e.g. to a helper-core clock, or to
      nothing when timing is modelled externally). *)
  let set_charge t f = t.charge <- f

  let stats t = t.stats
  let taint_of t loc = Sh.get t.shadow loc
  let shadow t = t.shadow

  (** Tainted locations and total shadow words (memory accounting). *)
  let shadow_footprint t =
    (Sh.tainted_locations t.shadow, Sh.footprint_words t.shadow)

  let joined_reads t (v : Event.view) =
    joined_arr t.shadow v.Event.v_reads 0 v.Event.v_nreads

  let hit_sink t sink taint v =
    if not (D.is_bottom taint) then t.stats.sink_hits <- t.stats.sink_hits + 1;
    (match t.sink_handler_view with
    | Some f -> f sink taint v
    | None -> ());
    match t.sink_handler with
    | Some f -> f sink taint (Event.view_to_exec v)
    | None -> ()

  (* -- control-taint bookkeeping (only when policy.propagate_control) - *)

  let thread_control_slow t tid =
    let tc =
      match Hashtbl.find_opt t.control tid with
      | Some tc -> tc
      | None ->
          let base =
            match Hashtbl.find_opt t.pending_spawn_taint tid with
            | Some d ->
                Hashtbl.remove t.pending_spawn_taint tid;
                d
            | None -> D.bottom
          in
          let tc = { cframes = [ { regions = []; base } ] } in
          Hashtbl.replace t.control tid tc;
          tc
    in
    t.ctl_tid <- tid;
    t.ctl_tc <- tc;
    tc

  let thread_control t tid =
    if tid = t.ctl_tid then t.ctl_tc else thread_control_slow t tid

  let current_cframe tc =
    match tc.cframes with
    | f :: _ -> f
    | [] ->
        let f = { regions = []; base = D.bottom } in
        tc.cframes <- [ f ];
        f

  let rec join_regions acc = function
    | [] -> acc
    | (_, d) :: rest -> join_regions (join2 acc d) rest

  let control_taint_of_frame f = join_regions f.base f.regions

  (* Region-list maintenance without allocating when nothing closes at
     this pc (the overwhelmingly common case). *)
  let rec closes_here pc = function
    | [] -> false
    | (close, _) :: rest -> close = pc || closes_here pc rest

  let rec remove_closed pc = function
    | [] -> []
    | ((close, _) as r) :: rest ->
        if close = pc then remove_closed pc rest
        else r :: remove_closed pc rest

  (* Update control regions for this event and return the active
     control taint. *)
  let control_taint t (v : Event.view) =
    if not t.policy.Policy.propagate_control then D.bottom
    else begin
      let tc = thread_control t v.Event.v_tid in
      let f = current_cframe tc in
      (match f.regions with
      | [] -> ()
      | regions ->
          if closes_here v.Event.v_pc regions then
            f.regions <- remove_closed v.Event.v_pc regions);
      let active = control_taint_of_frame f in
      (match v.Event.v_instr with
      | Instr.Br (_, _, _) ->
          let cond_taint = joined_reads t v in
          if not (D.is_bottom cond_taint) then begin
            let close =
              Static_info.ipdom t.static v.Event.v_func.Func.name
                v.Event.v_pc
            in
            f.regions <- (close, cond_taint) :: f.regions
          end
      | Instr.Call _ | Instr.Icall _ ->
          tc.cframes <- { regions = []; base = active } :: tc.cframes
      | Instr.Ret _ -> (
          match tc.cframes with
          | _ :: (_ :: _ as rest) -> tc.cframes <- rest
          | [ _ ] | [] -> ())
      | Instr.Sys (Instr.Spawn _) ->
          if not (D.is_bottom active) then
            Hashtbl.replace t.pending_spawn_taint v.Event.v_value active
      | _ -> ());
      active
    end

  (* -- the per-event transfer function --------------------------------- *)

  (** Sample the shadow footprint onto the timeline every
      [sample_every] processed events (default [256]) — the
      [shadow.words] / [shadow.tainted_locations] counter tracks ride
      on whichever domain runs {!process}, so the helper track shows
      the footprint growing while the application track keeps
      executing.  @raise Invalid_argument if [sample_every < 1]. *)
  let set_trace ?(sample_every = 256) t tr =
    if sample_every < 1 then invalid_arg "Engine.set_trace: sample_every < 1";
    t.tracer <- Some (tr, sample_every);
    t.trace_left <- 1

  let trace_sample t =
    match t.tracer with
    | None -> ()
    | Some (tr, every) ->
        t.trace_left <- t.trace_left - 1;
        if t.trace_left <= 0 then begin
          t.trace_left <- every;
          let open Dift_obs in
          Trace.counter tr ~cat:"core" "shadow.words"
            (Sh.footprint_words t.shadow);
          Trace.counter tr ~cat:"core" "shadow.tainted_locations"
            (Sh.tainted_locations t.shadow)
        end

  (** Record a bounded [engine.progress] milestone on the flight
      recorder every [milestone_every] processed events (default
      [4096]; [a] = events processed, [b] = sink hits so far) — so a
      crash bundle shows how far the engine's domain got.  The first
      processed event records immediately, marking engine start on
      the processing domain's ring.
      @raise Invalid_argument if [milestone_every < 1]. *)
  let set_flight ?(milestone_every = 4096) t fl =
    if milestone_every < 1 then
      invalid_arg "Engine.set_flight: milestone_every < 1";
    t.flight <- Some (fl, milestone_every);
    t.flight_left <- 1

  let flight_milestone t =
    match t.flight with
    | None -> ()
    | Some (fl, every) ->
        t.flight_left <- t.flight_left - 1;
        if t.flight_left <= 0 then begin
          t.flight_left <- every;
          Dift_obs.Flight.record fl ~cat:"core" "engine.progress"
            ~a:t.stats.events ~b:t.stats.sink_hits
        end

  (* Argument copies are pure moves: tags propagate unchanged (no
     [at_write]), so PC taint keeps naming the instruction that
     produced the value.  The pairwise walk stops at the shorter
     prefix — reads beyond [nw] are an Icall's target registers. *)
  let copy_args t ctl (v : Event.view) =
    let n = min v.Event.v_nwrites v.Event.v_nreads in
    for i = 0 to n - 1 do
      Sh.set t.shadow
        v.Event.v_writes.(i)
        (join2 (Sh.get t.shadow v.Event.v_reads.(i)) ctl)
    done

  let process_view t (v : Event.view) =
    t.stats.events <- t.stats.events + 1;
    trace_sample t;
    flight_milestone t;
    t.charge Cost.inline_taint_propagate;
    let ctl = control_taint t v in
    match v.Event.v_instr with
    | Instr.Sys (Instr.Read _) ->
        let taint =
          if v.Event.v_input_index >= 0 then begin
            t.stats.sources <- t.stats.sources + 1;
            D.source ~input_index:v.Event.v_input_index ~step:v.Event.v_step
          end
          else D.bottom
        in
        set_all t.shadow (join2 taint ctl) v.Event.v_writes v.Event.v_nwrites
    | Instr.Call _ | Instr.Icall _ | Instr.Sys (Instr.Spawn _) ->
        (* Pairwise argument copy; for Icall the trailing reads are the
           target operand's registers. *)
        (match v.Event.v_instr with
        | Instr.Icall (fop, _) ->
            let nargs = v.Event.v_nwrites in
            let target_taint =
              match fop with
              | Operand.Reg _ ->
                  joined_arr t.shadow v.Event.v_reads nargs v.Event.v_nreads
              | Operand.Imm _ -> D.bottom
            in
            hit_sink t Sink_icall target_taint v
        | _ -> ());
        (match v.Event.v_instr with
        | Instr.Sys (Instr.Spawn _) ->
            (* writes = [tid destination; callee r0]; the tid itself is
               environment data and stays clean, the argument carries
               its taint when the policy says so. *)
            let arg_taint =
              if t.policy.Policy.taint_spawn_arg then
                join2 (joined_reads t v) ctl
              else D.bottom
            in
            if v.Event.v_nwrites = 2 then begin
              Sh.set t.shadow v.Event.v_writes.(0) D.bottom;
              Sh.set t.shadow v.Event.v_writes.(1) arg_taint
            end
        | _ ->
            (* nargs = nwrites; reads beyond that are the Icall target
               registers, skipped by the pairwise walk. *)
            copy_args t ctl v)
    | Instr.Br (_, _, _) -> hit_sink t Sink_branch (joined_reads t v) v
    | Instr.Sys (Instr.Write _) ->
        hit_sink t Sink_output (joined_reads t v) v
    | Instr.Sys (Instr.Check _) ->
        hit_sink t Sink_check (joined_reads t v) v
    | Instr.Load _ | Instr.Store _ ->
        (* Split the reads into (value sources, address sources) by
           instruction shape: a Load's value source is its memory cell
           and its address registers are the rest; a Store's value
           source is its first read when the source operand is a
           register, the rest being the address computation. *)
        let is_load =
          match v.Event.v_instr with Instr.Load _ -> true | _ -> false
        in
        let addr_taint =
          match v.Event.v_instr with
          | Instr.Store (Operand.Reg _, _, _) when v.Event.v_nreads >= 1 ->
              joined_arr t.shadow v.Event.v_reads 1 v.Event.v_nreads
          | Instr.Store (_, _, _) -> joined_reads t v
          | _ ->
              joined_plane t.shadow v.Event.v_reads v.Event.v_nreads
                ~mem:false
        in
        hit_sink t
          (if is_load then Sink_load_address else Sink_store_address)
          addr_taint v;
        if v.Event.v_nwrites > 0 then begin
          let taint =
            match v.Event.v_instr with
            | Instr.Store (Operand.Reg _, _, _) when v.Event.v_nreads >= 1
              ->
                joined_arr t.shadow v.Event.v_reads 0 1
            | Instr.Store (_, _, _) -> D.bottom
            | _ ->
                joined_plane t.shadow v.Event.v_reads v.Event.v_nreads
                  ~mem:true
          in
          let taint =
            if
              (if is_load then t.policy.Policy.propagate_load_address
               else t.policy.Policy.propagate_store_address)
            then join2 taint addr_taint
            else taint
          in
          let taint = join2 taint ctl in
          (* Loads are pure copies; stores stamp the tag with their
             own site — "the most recent instruction that wrote to
             the location" (paper §3.3), which is what makes the tag
             at an attack sink name the unchecked store rather than
             an innocent load. *)
          let taint =
            if is_load then taint
            else
              D.at_write ~step:v.Event.v_step
                ~fname:v.Event.v_func.Func.name ~pc:v.Event.v_pc taint
          in
          set_all t.shadow taint v.Event.v_writes v.Event.v_nwrites
        end
    | _ ->
        (* every read is a value source; no address sinks *)
        if v.Event.v_nwrites > 0 then begin
          let taint = join2 (joined_reads t v) ctl in
          (* register moves and returned values are pure copies *)
          let taint =
            match v.Event.v_instr with
            | Instr.Mov _ | Instr.Ret _ -> taint
            | _ ->
                D.at_write ~step:v.Event.v_step
                  ~fname:v.Event.v_func.Func.name ~pc:v.Event.v_pc taint
          in
          set_all t.shadow taint v.Event.v_writes v.Event.v_nwrites
        end

  let process t (e : Event.exec) =
    let v =
      match t.scratch with
      | Some v ->
          Event.view_fill v e;
          v
      | None ->
          let v = Event.view_of_exec e in
          t.scratch <- Some v;
          v
    in
    process_view t v

  (** Expose the engine through an observability registry (derived
      gauges over the live stats and the O(1) shadow accounting). *)
  let register_obs t reg =
    let open Dift_obs in
    let g name help f = Registry.gauge_fn reg name ~help f in
    let s = t.stats in
    g "core.engine.events" "events the engine processed" (fun () ->
        s.events);
    g "core.engine.sources" "taint injections at input reads" (fun () ->
        s.sources);
    g "core.engine.sink_hits" "sinks reached by non-bottom taint"
      (fun () -> s.sink_hits);
    g "core.shadow.tainted_locations" "locations with non-bottom taint"
      (fun () -> Sh.tainted_locations t.shadow);
    g "core.shadow.words" "shadow footprint, machine words" (fun () ->
        Sh.footprint_words t.shadow)

  (** Attach the engine to a machine; overhead is charged to the
      machine's cycle counter unless [charge] overrides it (the
      multicore helper model redirects it to the helper core). *)
  let attach ?charge t machine =
    (t.charge <-
       match charge with
       | Some f -> f
       | None -> fun c -> Machine.charge machine c);
    Machine.attach machine
      (Tool.make ~on_exec:(process t) (Fmt.str "dift-%s" D.name))
end

module Make (D : Taint.DOMAIN) = Make_over (Shadow.Make) (D)
