(** The generic DIFT engine.

    Instantiated with a {!Taint.DOMAIN}, the engine is a VM tool that
    maintains shadow state for every location, injects taint at input
    reads, propagates it per the configured {!Policy}, and reports
    flows into sinks (indirect-call targets, outputs, assertions,
    pointers, branches) to a client-provided handler.

    This is the single propagation core all four of the paper's
    application areas instantiate: boolean taint for detection, PC
    taint for bug location, input sets for lineage.

    The per-event transfer function is allocation-free for immediate
    domains: source joins and write fans are static recursive loops
    (no closures), list emptiness is matched (no polymorphic
    comparison), the per-thread control state is cached by tid (no
    hashtable probe per event), and the Bool domain gets a
    short-circuiting monomorphic join selected once at functor
    application via {!Taint.DOMAIN.as_bool}. *)

open Dift_isa
open Dift_vm

type sink =
  | Sink_icall  (** indirect-call target *)
  | Sink_output  (** [Sys Write] operand *)
  | Sink_check  (** [Sys Check] operand *)
  | Sink_store_address  (** pointer used by a store *)
  | Sink_load_address  (** pointer used by a load *)
  | Sink_branch  (** branch condition *)

let sink_to_string = function
  | Sink_icall -> "icall-target"
  | Sink_output -> "output"
  | Sink_check -> "check"
  | Sink_store_address -> "store-address"
  | Sink_load_address -> "load-address"
  | Sink_branch -> "branch"

let pp_sink ppf s = Fmt.string ppf (sink_to_string s)

type stats = {
  mutable events : int;
  mutable sources : int;
  mutable sink_hits : int;  (** sinks reached by non-bottom taint *)
}

module Make_over (Shadow_impl : Shadow.IMPL) (D : Taint.DOMAIN) = struct
  module Sh = Shadow_impl (D)

  (* -- monomorphic fast paths, selected once at functor application -- *)

  (* For the Bool domain the fold over source locations short-circuits
     at the first tainted one and makes no calls through the functor
     parameter; every other domain pays the generic join loop (still
     closure-free). *)
  let joined_locs : Sh.t -> Loc.t list -> D.t =
    match D.as_bool with
    | Some Taint.Refl ->
        let rec any sh (locs : Loc.t list) =
          match locs with
          | [] -> false
          | l :: rest -> Sh.get sh l || any sh rest
        in
        any
    | None ->
        let rec go sh acc = function
          | [] -> acc
          | l :: rest -> go sh (D.join acc (Sh.get sh l)) rest
        in
        fun sh locs -> go sh D.bottom locs

  let join2 : D.t -> D.t -> D.t =
    match D.as_bool with Some Taint.Refl -> ( || ) | None -> D.join

  (* Write fan-out without a per-event closure. *)
  let rec set_all sh v = function
    | [] -> ()
    | l :: rest ->
        Sh.set sh l v;
        set_all sh v rest

  type control_frame = {
    mutable regions : (int * D.t) list;  (** (close_at_pc, taint) *)
    base : D.t;  (** control taint inherited through the call *)
  }

  type thread_control = { mutable cframes : control_frame list }

  type t = {
    policy : Policy.t;
    static : Static_info.t;
    shadow : Sh.t;
    stats : stats;
    mutable sink_handler : (sink -> D.t -> Event.exec -> unit) option;
    control : (int, thread_control) Hashtbl.t;
    mutable ctl_tid : int;  (** tid of [ctl_tc], or [min_int] *)
    mutable ctl_tc : thread_control;
        (** per-thread control state cache: workloads are dominated by
            long single-thread stretches, so the per-event
            [Hashtbl.find_opt] (and its [Some] allocation) almost
            always collapses into one int compare *)
    pending_spawn_taint : (int, D.t) Hashtbl.t;  (** tid -> control taint *)
    mutable charge : int -> unit;
    mutable tracer : (Dift_obs.Trace.t * int) option;
        (** timeline tracer and its sampling period *)
    mutable trace_left : int;  (** events until the next sample *)
    mutable flight : (Dift_obs.Flight.t * int) option;
        (** flight recorder and its milestone period *)
    mutable flight_left : int;  (** events until the next milestone *)
  }

  let create ?(policy = Policy.default) program =
    {
      policy;
      static = Static_info.create program;
      shadow = Sh.create ();
      stats = { events = 0; sources = 0; sink_hits = 0 };
      sink_handler = None;
      control = Hashtbl.create 8;
      ctl_tid = min_int;
      ctl_tc = { cframes = [] };
      pending_spawn_taint = Hashtbl.create 8;
      charge = ignore;
      tracer = None;
      trace_left = 0;
      flight = None;
      flight_left = 0;
    }

  let on_sink t f = t.sink_handler <- Some f

  (** Redirect overhead charging (e.g. to a helper-core clock, or to
      nothing when timing is modelled externally). *)
  let set_charge t f = t.charge <- f

  let stats t = t.stats
  let taint_of t loc = Sh.get t.shadow loc
  let shadow t = t.shadow

  (** Tainted locations and total shadow words (memory accounting). *)
  let shadow_footprint t =
    (Sh.tainted_locations t.shadow, Sh.footprint_words t.shadow)

  let joined t locs = joined_locs t.shadow locs

  let hit_sink t sink taint e =
    if not (D.is_bottom taint) then t.stats.sink_hits <- t.stats.sink_hits + 1;
    match t.sink_handler with
    | Some f -> f sink taint e
    | None -> ()

  (* -- control-taint bookkeeping (only when policy.propagate_control) - *)

  let thread_control_slow t tid =
    let tc =
      match Hashtbl.find_opt t.control tid with
      | Some tc -> tc
      | None ->
          let base =
            match Hashtbl.find_opt t.pending_spawn_taint tid with
            | Some d ->
                Hashtbl.remove t.pending_spawn_taint tid;
                d
            | None -> D.bottom
          in
          let tc = { cframes = [ { regions = []; base } ] } in
          Hashtbl.replace t.control tid tc;
          tc
    in
    t.ctl_tid <- tid;
    t.ctl_tc <- tc;
    tc

  let thread_control t tid =
    if tid = t.ctl_tid then t.ctl_tc else thread_control_slow t tid

  let current_cframe tc =
    match tc.cframes with
    | f :: _ -> f
    | [] ->
        let f = { regions = []; base = D.bottom } in
        tc.cframes <- [ f ];
        f

  let rec join_regions acc = function
    | [] -> acc
    | (_, d) :: rest -> join_regions (join2 acc d) rest

  let control_taint_of_frame f = join_regions f.base f.regions

  (* Region-list maintenance without allocating when nothing closes at
     this pc (the overwhelmingly common case). *)
  let rec closes_here pc = function
    | [] -> false
    | (close, _) :: rest -> close = pc || closes_here pc rest

  let rec remove_closed pc = function
    | [] -> []
    | ((close, _) as r) :: rest ->
        if close = pc then remove_closed pc rest
        else r :: remove_closed pc rest

  (* Update control regions for this event and return the active
     control taint. *)
  let control_taint t (e : Event.exec) =
    if not t.policy.Policy.propagate_control then D.bottom
    else begin
      let tc = thread_control t e.Event.tid in
      let f = current_cframe tc in
      (match f.regions with
      | [] -> ()
      | regions ->
          if closes_here e.Event.pc regions then
            f.regions <- remove_closed e.Event.pc regions);
      let active = control_taint_of_frame f in
      (match e.Event.instr with
      | Instr.Br (_, _, _) ->
          let cond_taint = joined t e.Event.reads in
          if not (D.is_bottom cond_taint) then begin
            let close =
              Static_info.ipdom t.static e.Event.func.Func.name e.Event.pc
            in
            f.regions <- (close, cond_taint) :: f.regions
          end
      | Instr.Call _ | Instr.Icall _ ->
          tc.cframes <- { regions = []; base = active } :: tc.cframes
      | Instr.Ret _ -> (
          match tc.cframes with
          | _ :: (_ :: _ as rest) -> tc.cframes <- rest
          | [ _ ] | [] -> ())
      | Instr.Sys (Instr.Spawn _) ->
          if not (D.is_bottom active) then
            Hashtbl.replace t.pending_spawn_taint e.Event.value active
      | _ -> ());
      active
    end

  (* -- the per-event transfer function --------------------------------- *)

  (* Splits a load/store event's reads into (value sources, address
     sources) according to the instruction shape. *)
  let split_sources (e : Event.exec) =
    match e.Event.instr with
    | Instr.Load (_, _, _) ->
        let mems, regs = List.partition Loc.is_mem e.Event.reads in
        (mems, regs)
    | Instr.Store (src, _, _) -> (
        match src, e.Event.reads with
        | Operand.Reg _, s :: rest -> ([ s ], rest)
        | (Operand.Imm _ | Operand.Reg _), rest -> ([], rest))
    | _ -> (e.Event.reads, [])

  let site_of (e : Event.exec) = (e.Event.func.Func.name, e.Event.pc)

  (** Sample the shadow footprint onto the timeline every
      [sample_every] processed events (default [256]) — the
      [shadow.words] / [shadow.tainted_locations] counter tracks ride
      on whichever domain runs {!process}, so the helper track shows
      the footprint growing while the application track keeps
      executing.  @raise Invalid_argument if [sample_every < 1]. *)
  let set_trace ?(sample_every = 256) t tr =
    if sample_every < 1 then invalid_arg "Engine.set_trace: sample_every < 1";
    t.tracer <- Some (tr, sample_every);
    t.trace_left <- 1

  let trace_sample t =
    match t.tracer with
    | None -> ()
    | Some (tr, every) ->
        t.trace_left <- t.trace_left - 1;
        if t.trace_left <= 0 then begin
          t.trace_left <- every;
          let open Dift_obs in
          Trace.counter tr ~cat:"core" "shadow.words"
            (Sh.footprint_words t.shadow);
          Trace.counter tr ~cat:"core" "shadow.tainted_locations"
            (Sh.tainted_locations t.shadow)
        end

  (** Record a bounded [engine.progress] milestone on the flight
      recorder every [milestone_every] processed events (default
      [4096]; [a] = events processed, [b] = sink hits so far) — so a
      crash bundle shows how far the engine's domain got.  The first
      processed event records immediately, marking engine start on
      the processing domain's ring.
      @raise Invalid_argument if [milestone_every < 1]. *)
  let set_flight ?(milestone_every = 4096) t fl =
    if milestone_every < 1 then
      invalid_arg "Engine.set_flight: milestone_every < 1";
    t.flight <- Some (fl, milestone_every);
    t.flight_left <- 1

  let flight_milestone t =
    match t.flight with
    | None -> ()
    | Some (fl, every) ->
        t.flight_left <- t.flight_left - 1;
        if t.flight_left <= 0 then begin
          t.flight_left <- every;
          Dift_obs.Flight.record fl ~cat:"core" "engine.progress"
            ~a:t.stats.events ~b:t.stats.sink_hits
        end

  (* Argument copies are pure moves: tags propagate unchanged (no
     [at_write]), so PC taint keeps naming the instruction that
     produced the value. *)
  let rec copy_args t ctl writes reads =
    match writes, reads with
    | [], _ | _, [] -> ()
    | w :: ws, r :: rs ->
        Sh.set t.shadow w (join2 (Sh.get t.shadow r) ctl);
        copy_args t ctl ws rs

  let process t (e : Event.exec) =
    t.stats.events <- t.stats.events + 1;
    trace_sample t;
    flight_milestone t;
    t.charge Cost.inline_taint_propagate;
    let ctl = control_taint t e in
    match e.Event.instr with
    | Instr.Sys (Instr.Read _) ->
        let taint =
          if e.Event.input_index >= 0 then begin
            t.stats.sources <- t.stats.sources + 1;
            D.source ~input_index:e.Event.input_index ~step:e.Event.step
          end
          else D.bottom
        in
        set_all t.shadow (join2 taint ctl) e.Event.writes
    | Instr.Call _ | Instr.Icall _ | Instr.Sys (Instr.Spawn _) ->
        (* Pairwise argument copy; for Icall the trailing reads are the
           target operand's registers. *)
        (match e.Event.instr with
        | Instr.Icall (fop, _) ->
            let nargs = List.length e.Event.writes in
            let target_locs =
              match fop with
              | Operand.Reg _ ->
                  List.filteri (fun i _ -> i >= nargs) e.Event.reads
              | Operand.Imm _ -> []
            in
            hit_sink t Sink_icall (joined t target_locs) e
        | _ -> ());
        (match e.Event.instr with
        | Instr.Sys (Instr.Spawn _) -> (
            (* writes = [tid destination; callee r0]; the tid itself is
               environment data and stays clean, the argument carries
               its taint when the policy says so. *)
            let arg_taint =
              if t.policy.Policy.taint_spawn_arg then
                join2 (joined t e.Event.reads) ctl
              else D.bottom
            in
            match e.Event.writes with
            | [ tid_dst; callee_arg ] ->
                Sh.set t.shadow tid_dst D.bottom;
                Sh.set t.shadow callee_arg arg_taint
            | _ -> ())
        | _ ->
            (* nargs = length writes; reads beyond that are the Icall
               target registers, skipped by the pairwise walk. *)
            copy_args t ctl e.Event.writes e.Event.reads)
    | Instr.Br (_, _, _) ->
        hit_sink t Sink_branch (joined t e.Event.reads) e
    | Instr.Sys (Instr.Write _) ->
        hit_sink t Sink_output (joined t e.Event.reads) e
    | Instr.Sys (Instr.Check _) ->
        hit_sink t Sink_check (joined t e.Event.reads) e
    | Instr.Load _ | Instr.Store _ ->
        let value_srcs, addr_srcs = split_sources e in
        let is_load =
          match e.Event.instr with Instr.Load _ -> true | _ -> false
        in
        hit_sink t
          (if is_load then Sink_load_address else Sink_store_address)
          (joined t addr_srcs) e;
        (match e.Event.writes with
        | [] -> ()
        | writes ->
            let taint = joined t value_srcs in
            let taint =
              if
                (if is_load then t.policy.Policy.propagate_load_address
                 else t.policy.Policy.propagate_store_address)
              then join2 taint (joined t addr_srcs)
              else taint
            in
            let taint = join2 taint ctl in
            (* Loads are pure copies; stores stamp the tag with their
               own site — "the most recent instruction that wrote to
               the location" (paper §3.3), which is what makes the tag
               at an attack sink name the unchecked store rather than
               an innocent load. *)
            let taint =
              if is_load then taint
              else
                let fname, pc = site_of e in
                D.at_write ~step:e.Event.step ~fname ~pc taint
            in
            set_all t.shadow taint writes)
    | _ -> (
        (* every read is a value source; no address sinks *)
        match e.Event.writes with
        | [] -> ()
        | writes ->
            let taint = join2 (joined t e.Event.reads) ctl in
            (* register moves and returned values are pure copies *)
            let taint =
              match e.Event.instr with
              | Instr.Mov _ | Instr.Ret _ -> taint
              | _ ->
                  let fname, pc = site_of e in
                  D.at_write ~step:e.Event.step ~fname ~pc taint
            in
            set_all t.shadow taint writes)

  (** Expose the engine through an observability registry (derived
      gauges over the live stats and the O(1) shadow accounting). *)
  let register_obs t reg =
    let open Dift_obs in
    let g name help f = Registry.gauge_fn reg name ~help f in
    let s = t.stats in
    g "core.engine.events" "events the engine processed" (fun () ->
        s.events);
    g "core.engine.sources" "taint injections at input reads" (fun () ->
        s.sources);
    g "core.engine.sink_hits" "sinks reached by non-bottom taint"
      (fun () -> s.sink_hits);
    g "core.shadow.tainted_locations" "locations with non-bottom taint"
      (fun () -> Sh.tainted_locations t.shadow);
    g "core.shadow.words" "shadow footprint, machine words" (fun () ->
        Sh.footprint_words t.shadow)

  (** Attach the engine to a machine; overhead is charged to the
      machine's cycle counter unless [charge] overrides it (the
      multicore helper model redirects it to the helper core). *)
  let attach ?charge t machine =
    (t.charge <-
       match charge with
       | Some f -> f
       | None -> fun c -> Machine.charge machine c);
    Machine.attach machine
      (Tool.make ~on_exec:(process t) (Fmt.str "dift-%s" D.name))
end

module Make (D : Taint.DOMAIN) = Make_over (Shadow.Make) (D)
