(** The fixed-size circular dependence buffer (paper §2.1).

    ONTRAC deliberately stores dependences in a bounded in-memory
    buffer instead of writing them out: the buffer holds the most
    recent window of execution history, and a fault can be located by
    slicing only if it is exercised within that window.  This module
    tracks the byte budget, evicts the oldest records when it is
    exceeded, and reports the resulting window. *)

type t = {
  capacity : int;  (** bytes *)
  records : (int * int) Queue.t;  (** (use_step, encoded_bytes) *)
  mutable stored_bytes : int;
  mutable total_bytes : int;  (** all bytes ever appended *)
  mutable total_records : int;
  mutable evicted_records : int;
  mutable window_start : int;
      (** smallest step whose records are guaranteed retained *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace_buffer.create: capacity";
  {
    capacity;
    records = Queue.create ();
    stored_bytes = 0;
    total_bytes = 0;
    total_records = 0;
    evicted_records = 0;
    window_start = 0;
  }

let evict_one t =
  match Queue.take_opt t.records with
  | None -> ()
  | Some (step, bytes) ->
      t.stored_bytes <- t.stored_bytes - bytes;
      t.evicted_records <- t.evicted_records + 1;
      (* Everything at or before the evicted record's step may be
         incomplete now. *)
      if step >= t.window_start then t.window_start <- step + 1

let add t ~use_step ~bytes =
  Queue.add (use_step, bytes) t.records;
  t.stored_bytes <- t.stored_bytes + bytes;
  t.total_bytes <- t.total_bytes + bytes;
  t.total_records <- t.total_records + 1;
  (* Never evict the record just appended: a record larger than the
     whole buffer ([bytes > capacity]) is retained alone rather than
     silently dropped — evicting it would leave the buffer empty while
     [total_records] advances and would push [window_start] past the
     record's own step, corrupting the window accounting. *)
  while t.stored_bytes > t.capacity && Queue.length t.records > 1 do
    evict_one t
  done

let window_start t = t.window_start
let stored_bytes t = t.stored_bytes
let total_bytes t = t.total_bytes
let total_records t = t.total_records
let evicted_records t = t.evicted_records
let stored_records t = Queue.length t.records

let pp ppf t =
  Fmt.pf ppf
    "buffer: %d/%d bytes, %d records stored, %d evicted, window from #%d"
    t.stored_bytes t.capacity (Queue.length t.records) t.evicted_records
    t.window_start
