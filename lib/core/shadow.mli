(** Shadow state: a taint value for every storage location.

    Bottom values are not stored, so the table's size is the number of
    currently tainted locations — which is also what the memory
    overhead measurements count. *)

open Dift_vm

module Make (D : Taint.DOMAIN) : sig
  type t

  val create : unit -> t

  (** Untracked locations read as [D.bottom]. *)
  val get : t -> Loc.t -> D.t

  (** Storing [D.bottom] clears the entry. *)
  val set : t -> Loc.t -> D.t -> unit

  val clear : t -> Loc.t -> unit

  (** Number of tainted locations. *)
  val tainted_locations : t -> int

  (** Total shadow footprint in words, per the domain's accounting.
      O(1): the count is maintained incrementally by {!set}/{!clear},
      so stats sampling may call it per event. *)
  val footprint_words : t -> int

  (** Recompute the footprint by folding over the whole table — the
      O(n) definition {!footprint_words} must always agree with.
      Debug cross-check only. *)
  val recomputed_footprint_words : t -> int

  val fold : (Loc.t -> D.t -> 'a -> 'a) -> t -> 'a -> 'a
end
