(** Shadow state: a taint value for every storage location — the
    functor-level selector over the two implementations.

    Bottom values are never counted, so {!S.tainted_locations} is the
    number of currently tainted locations — which is also what the
    memory overhead measurements count.

    {!Make} is the default: the flat paged table of {!Shadow_pages}
    (direct array indexing on the integer {!Dift_vm.Loc} encoding; see
    [docs/performance.md] for the layout).  {!Make_ref} is the
    original hashtable ({!Shadow_ref}), retained as the observational
    reference for differential testing and as the fallback for
    extremely sparse address spaces.  An engine over a specific
    implementation is built with {!Engine.Make_over}. *)

module type S = Shadow_intf.S
module type IMPL = Shadow_intf.IMPL

(** The paged flat shadow (default). *)
module Make : IMPL

(** The hashtable shadow (reference / sparse fallback). *)
module Make_ref : IMPL
