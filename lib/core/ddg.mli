(** The dynamic dependence graph.

    Nodes are dynamic instruction instances, identified by their
    global step number; edges point from a use to its definitions.
    The graph supports pruning of nodes older than a window start,
    which is how the ONTRAC circular buffer's eviction is reflected. *)

(** Monomorphic hash table over dynamic step numbers (cheap int hash,
    no generic hashing); shared with {!Slicing}'s visited sets. *)
module Itbl : Hashtbl.S with type key = int

type node = {
  step : int;
  tid : int;
  fname : string;
  pc : int;
  input_index : int;  (** input word consumed here, or [-1] *)
  is_output : bool;  (** a [Sys Write] instance *)
  mutable preds : (Dep.kind * int) list;
}

type t

val create : unit -> t

val add_node :
  t ->
  step:int ->
  tid:int ->
  fname:string ->
  pc:int ->
  input_index:int ->
  is_output:bool ->
  unit

val node : t -> int -> node option
val mem : t -> int -> bool

(** Add a dependence edge; edges whose endpoints are not (or no
    longer) nodes are ignored, matching buffer-eviction semantics. *)
val add_dep : t -> Dep.t -> unit

val preds : t -> int -> (Dep.kind * int) list
val num_nodes : t -> int
val num_edges : t -> int
val max_step : t -> int
val iter_nodes : (node -> unit) -> t -> unit

(** Drop every node with step below [window_start]. *)
val prune : t -> window_start:int -> unit

(** Successor adjacency (use -> def inverted), built on demand for
    forward traversals. *)
val successors : t -> (Dep.kind * int) list Itbl.t

val pp : t Fmt.t
