(** Shadow state: a taint value for every storage location — the
    functor-level selector over the two implementations.

    {!Make} (what {!Engine.Make} and every application layer use) is
    the flat paged table of {!Shadow_pages}: direct array indexing on
    the integer {!Dift_vm.Loc} encoding, no hashing and no hot-path
    allocation.  {!Make_ref} is the original hashtable
    ({!Shadow_ref}), retained as the observational reference for
    differential testing and as the fallback for extremely sparse
    address spaces.  Both satisfy {!S}; an engine over a specific
    implementation is built with {!Engine.Make_over}. *)

module type S = Shadow_intf.S
module type IMPL = Shadow_intf.IMPL

module Make = Shadow_pages.Make
module Make_ref = Shadow_ref.Make
