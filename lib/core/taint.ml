(** Taint domains.

    The paper instantiates its DIFT framework with several metadata
    domains: boolean taint for attack detection, program-counter taint
    for attack root-cause location (§3.3), and input-id sets for data
    lineage (§3.4).  Each is a join-semilattice with a distinguished
    bottom ("untainted") element, a source injection and a write
    transfer function. *)

(** A type-equality witness.  [('a, 'b) eq] is inhabited exactly when
    ['a] and ['b] are the same type; matching on {!Refl} makes the
    equality available to the type checker.  The engine uses it to
    discover — once, at instantiation time — that a domain's [t] is
    [bool] and switch to a monomorphic, short-circuiting propagation
    path with no calls through the functor parameter. *)
type (_, _) eq = Refl : ('a, 'a) eq

module type DOMAIN = sig
  type t

  val name : string

  (** The untainted element. *)
  val bottom : t

  val is_bottom : t -> bool
  val equal : t -> t -> bool

  (** [Some Refl] iff [t] is [bool] with [bottom = false] and
      [join = (||)] — the license for the engine's monomorphic
      boolean fast path.  Everything else must answer [None]. *)
  val as_bool : (t, bool) eq option

  (** Least upper bound; combining the taints of an instruction's
      operands. *)
  val join : t -> t -> t

  (** Taint injected when input word [input_index] is read at dynamic
      step [step]. *)
  val source : input_index:int -> step:int -> t

  (** Transfer applied when a value with taint [t] is written by the
      instruction at [(fname, pc)], dynamic step [step].  Most domains
      return [t] unchanged; the PC domain replaces any non-bottom
      taint with the identity of the writing instruction. *)
  val at_write : step:int -> fname:string -> pc:int -> t -> t

  (** Approximate shadow footprint of one value, in machine words —
      used for the memory-overhead experiments. *)
  val words : t -> int

  val pp : t Fmt.t
end

(** Boolean taint: tainted / untainted. *)
module Bool : DOMAIN with type t = bool = struct
  type t = bool

  let name = "bool"
  let bottom = false
  let is_bottom t = not t
  let equal = Bool.equal
  let as_bool = Some Refl
  let join = ( || )
  let source ~input_index:_ ~step:_ = true
  let at_write ~step:_ ~fname:_ ~pc:_ t = t
  let words _ = 1
  let pp ppf t = Fmt.string ppf (if t then "tainted" else "clean")
end

(** The identity of a static instruction site and its dynamic instance,
    carried by PC taint. *)
type site = { fname : string; pc : int; step : int }

(** PC taint (paper §3.3): a tainted value carries the site of the most
    recent instruction that wrote it; bottom means untainted.  When an
    attack is detected, the sink's taint directly names the candidate
    root-cause statement. *)
module Pc : DOMAIN with type t = site option = struct
  type t = site option

  let name = "pc"
  let bottom = None

  (* monomorphic: [t = None] would call the generic structural
     comparison once per event *)
  let is_bottom = function None -> true | Some _ -> false
  let as_bool = None

  let equal a b =
    match a, b with
    | None, None -> true
    | Some x, Some y -> x.fname = y.fname && x.pc = y.pc && x.step = y.step
    | None, Some _ | Some _, None -> false

  (* Joining two tainted operands keeps the more recent writer — the
     "most recent instruction that wrote to the location" rule. *)
  let join a b =
    match a, b with
    | None, t | t, None -> t
    | Some x, Some y -> if x.step >= y.step then a else b

  let source ~input_index:_ ~step = Some { fname = "<input>"; pc = -1; step }

  let at_write ~step ~fname ~pc t =
    match t with None -> None | Some _ -> Some { fname; pc; step }

  let words _ = 1

  let pp ppf = function
    | None -> Fmt.string ppf "clean"
    | Some s -> Fmt.pf ppf "%s:%d@@%d" s.fname s.pc s.step
end

module Int_set = Set.Make (Int)

(** Input-set taint (naive lineage, §3.4): the set of input indices the
    value transitively depends on. *)
module Input_set : DOMAIN with type t = Int_set.t = struct
  type t = Int_set.t

  let name = "input-set"
  let bottom = Int_set.empty
  let is_bottom = Int_set.is_empty
  let equal = Int_set.equal
  let as_bool = None
  let join = Int_set.union
  let source ~input_index ~step:_ = Int_set.singleton input_index
  let at_write ~step:_ ~fname:_ ~pc:_ t = t
  let words t = max 1 (Int_set.cardinal t)
  let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (Int_set.elements t)
end
