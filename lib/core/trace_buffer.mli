(** The fixed-size circular dependence buffer (paper §2.1).

    ONTRAC deliberately stores dependences in a bounded in-memory
    buffer instead of writing them out: the buffer holds the most
    recent window of execution history, and a fault can be located by
    slicing only if it is exercised within that window. *)

type t

(** @raise Invalid_argument on a non-positive capacity (bytes). *)
val create : capacity:int -> t

(** Append a record; evicts the oldest records while over capacity.

    The newly appended record itself is never evicted: an oversized
    record ([bytes > capacity]) is retained alone, so {!stored_bytes}
    may exceed the capacity until the next {!add} evicts it.  This
    keeps the invariants [stored_records >= 1] after any [add] and
    [window_start <= use_step] of the newest record. *)
val add : t -> use_step:int -> bytes:int -> unit

(** Smallest step whose records are guaranteed retained. *)
val window_start : t -> int

val stored_bytes : t -> int

(** All bytes ever appended (the trace *rate* measure). *)
val total_bytes : t -> int

val total_records : t -> int
val evicted_records : t -> int
val stored_records : t -> int
val pp : t Fmt.t
