(** The generic DIFT engine.

    Instantiated with a {!Taint.DOMAIN}, the engine is a VM tool that
    maintains shadow state for every location, injects taint at input
    reads, propagates it per the configured {!Policy}, and reports
    flows into sinks to a client-provided handler.

    This is the single propagation core all four of the paper's
    application areas instantiate: boolean taint for detection, PC
    taint for bug location, input sets for lineage.

    {!Make} runs over the default flat paged shadow ({!Shadow.Make});
    {!Make_over} additionally takes the shadow implementation as a
    functor argument, which is how the differential suite builds an
    engine over the hashtable reference ({!Shadow.Make_ref}) and
    checks the two are observationally identical. *)

open Dift_isa
open Dift_vm

type sink =
  | Sink_icall  (** indirect-call target *)
  | Sink_output  (** [Sys Write] operand *)
  | Sink_check  (** [Sys Check] operand *)
  | Sink_store_address  (** pointer used by a store *)
  | Sink_load_address  (** pointer used by a load *)
  | Sink_branch  (** branch condition *)

val sink_to_string : sink -> string
val pp_sink : sink Fmt.t

type stats = {
  mutable events : int;
  mutable sources : int;
  mutable sink_hits : int;  (** sinks reached by non-bottom taint *)
}

(** The engine over an explicit shadow implementation. *)
module Make_over (Shadow_impl : Shadow.IMPL) (D : Taint.DOMAIN) : sig
  module Sh : Shadow.S with type elt = D.t

  type t

  val create : ?policy:Policy.t -> Program.t -> t

  (** Register the sink handler (called for every sink event, tainted
      or not; check [D.is_bottom]). *)
  val on_sink : t -> (sink -> D.t -> Event.exec -> unit) -> unit

  (** The allocation-free sink handler: sees the live {!Event.view},
      which is valid only for the duration of the call (use
      {!Event.view_to_exec} to retain it).  May be installed alongside
      {!on_sink}; the view handler runs first. *)
  val on_sink_view : t -> (sink -> D.t -> Event.view -> unit) -> unit

  (** Redirect overhead charging (e.g. to a helper-core clock, or to
      nothing when timing is modelled externally). *)
  val set_charge : t -> (int -> unit) -> unit

  val stats : t -> stats
  val taint_of : t -> Loc.t -> D.t
  val shadow : t -> Sh.t

  (** Tainted locations and total shadow words (memory accounting). *)
  val shadow_footprint : t -> int * int

  (** The per-event transfer function (exposed for harnesses that
      drive the engine themselves; {!attach} wires it up as a VM
      tool). *)
  val process : t -> Event.exec -> unit

  (** The transfer function over a decoded {!Event.view} — what the
      de-boxed forwarding plane calls per event; {!process} is this
      plus a fill of a per-engine scratch view. *)
  val process_view : t -> Event.view -> unit

  (** Register the engine's statistics in an observability registry as
      derived gauges ([core.engine.*] and [core.shadow.*]; see
      [docs/observability.md]).  Snapshot-time reads only — the
      propagation hot path is untouched. *)
  val register_obs : t -> Dift_obs.Registry.t -> unit

  (** Sample the shadow footprint onto an execution timeline: every
      [sample_every] processed events (default [256]) the engine
      records [shadow.words] and [shadow.tainted_locations] counter
      samples (category [core]) into the {e processing} domain's
      trace buffer — under the two-domain runtime that is the helper
      track, so the trace shows the footprint growing while the
      application track keeps executing (paper §2.1).
      @raise Invalid_argument if [sample_every < 1]. *)
  val set_trace : ?sample_every:int -> t -> Dift_obs.Trace.t -> unit

  (** Record bounded [engine.progress] milestones (category [core],
      [a] = events processed, [b] = sink hits) on the flight recorder
      every [milestone_every] processed events (default [4096]), on
      the {e processing} domain's ring — so a crash bundle shows how
      far the engine got before the run died.  The first processed
      event records immediately (an engine-start marker).
      @raise Invalid_argument if [milestone_every < 1]. *)
  val set_flight : ?milestone_every:int -> t -> Dift_obs.Flight.t -> unit

  (** Attach to a machine; overhead is charged to the machine's cycle
      counter unless [charge] overrides it. *)
  val attach : ?charge:(int -> unit) -> t -> Machine.t -> unit
end

(** The engine over the default (paged) shadow. *)
module Make (D : Taint.DOMAIN) : module type of Make_over (Shadow.Make) (D)
