(** The dynamic dependence graph.

    Nodes are dynamic instruction instances, identified by their global
    step number; edges point from a use to its definitions (and, for
    WAR/WAW, from a write to the accesses it follows).  The graph
    supports pruning of nodes older than a window start, which is how
    the ONTRAC circular buffer's eviction is reflected. *)

open Dift_vm

(** Monomorphic hash table over dynamic step numbers.  The polymorphic
    [Hashtbl] it replaces paid a generic-hash call per operation;
    steps are ints, so the cheap {!Loc.hash} int mix applies
    unchanged.  Shared with {!Slicing}'s visited sets. *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal (a : int) (b : int) = a = b
  let hash = Loc.hash
end)

type node = {
  step : int;
  tid : int;
  fname : string;
  pc : int;
  input_index : int;  (** input word consumed here, or [-1] *)
  is_output : bool;  (** a [Sys Write] instance *)
  mutable preds : (Dep.kind * int) list;
}

type t = {
  nodes : node Itbl.t;
  mutable min_step : int;
  mutable max_step : int;
  mutable edge_count : int;
}

let create () =
  { nodes = Itbl.create 4096; min_step = max_int; max_step = -1;
    edge_count = 0 }

let add_node t ~step ~tid ~fname ~pc ~input_index ~is_output =
  if not (Itbl.mem t.nodes step) then begin
    Itbl.replace t.nodes step
      { step; tid; fname; pc; input_index; is_output; preds = [] };
    if step < t.min_step then t.min_step <- step;
    if step > t.max_step then t.max_step <- step
  end

let node t step = Itbl.find_opt t.nodes step
let mem t step = Itbl.mem t.nodes step

(** Add a dependence edge; both endpoints must already be nodes
    (missing endpoints are ignored, matching buffer-eviction
    semantics). *)
let add_dep t (d : Dep.t) =
  match Itbl.find_opt t.nodes d.Dep.use_step with
  | None -> ()
  | Some n ->
      if Itbl.mem t.nodes d.Dep.def_step then begin
        n.preds <- (d.Dep.kind, d.Dep.def_step) :: n.preds;
        t.edge_count <- t.edge_count + 1
      end

let preds t step =
  match Itbl.find_opt t.nodes step with
  | Some n -> n.preds
  | None -> []

let num_nodes t = Itbl.length t.nodes
let num_edges t = t.edge_count
let max_step t = t.max_step

let iter_nodes f t = Itbl.iter (fun _ n -> f n) t.nodes

(** Drop every node (and its out-edges) with step below
    [window_start]; edges *into* dropped nodes from retained nodes are
    kept dangling and skipped during traversal. *)
let prune t ~window_start =
  let doomed = ref [] in
  Itbl.iter
    (fun step _ -> if step < window_start then doomed := step :: !doomed)
    t.nodes;
  List.iter
    (fun s ->
      (match Itbl.find_opt t.nodes s with
      | Some n -> t.edge_count <- t.edge_count - List.length n.preds
      | None -> ());
      Itbl.remove t.nodes s)
    !doomed;
  if window_start > t.min_step then t.min_step <- window_start

(** Successor adjacency (use -> def inverted), built on demand for
    forward traversals. *)
let successors t =
  let succ = Itbl.create (Itbl.length t.nodes) in
  Itbl.iter
    (fun use n ->
      List.iter
        (fun (k, def) ->
          let cur =
            match Itbl.find_opt succ def with Some l -> l | None -> []
          in
          Itbl.replace succ def ((k, use) :: cur))
        n.preds)
    t.nodes;
  succ

let pp ppf t =
  Fmt.pf ppf "@[<v>ddg: %d nodes, %d edges@," (num_nodes t) (num_edges t);
  let steps =
    Itbl.fold (fun s _ acc -> s :: acc) t.nodes [] |> List.sort Int.compare
  in
  List.iter
    (fun s ->
      match node t s with
      | None -> ()
      | Some n ->
          Fmt.pf ppf "  #%d %s:%d <- %a@," n.step n.fname n.pc
            Fmt.(list ~sep:sp (pair ~sep:(any ":") Dep.pp_kind int))
            n.preds)
    steps;
  Fmt.pf ppf "@]"
