(** ONTRAC: online dependence tracing for debugging (paper §2.1).

    A VM tool that computes the dynamic dependence graph online and
    stores dependence records in a fixed-size circular buffer
    ({!Trace_buffer}), eliminating the offline postprocessing step of
    the two-phase baseline ({!Offline}).  The optimizations from the
    paper are all implemented and individually toggleable:

    - {b O1} — dependences within a basic block that are statically
      inferable from the binary are not stored;
    - {b O2} — the same idea extended to hot multi-block paths
      ("traces"): a cross-block register dependence along learned hot
      edges is inferable and not stored;
    - {b O3} — redundant loads do not produce new records;
    - {b O4a} — selective tracing of user-specified functions, with
      summary dependences that safely bridge untraced code so chains
      through the specified functions are not broken;
    - {b O4b} — storing only dependences in the forward slice of the
      program inputs.

    The full graph (stored + inferable edges) for the retained window
    is available as a {!Ddg.t} for slicing; byte and cycle accounting
    reflect only the *stored* records — the paper's accounting, where
    statically recoverable dependences occupy no trace space. *)

open Dift_isa
open Dift_vm

type opts = {
  o1_intra_block : bool;
  o2_traces : bool;
  o2_hot_threshold : int;
      (** executions after which a block transition counts as hot *)
  o3_redundant_loads : bool;
  scope : string list option;
      (** [Some fs]: trace only functions in [fs] (O4a); [None]: all *)
  input_slice_only : bool;  (** O4b *)
  capacity : int;  (** trace buffer capacity in bytes *)
  record_war_waw : bool;
      (** also record WAR/WAW dependences (multithreaded slicing) *)
}

(** All optimizations on, 16 MB buffer. *)
val default_opts : opts

(** Every optimization off — the unoptimized online tracer. *)
val no_opts : opts

type stats = {
  mutable instructions : int;
  mutable deps_total : int;
  mutable deps_recorded : int;
  mutable elided_o1 : int;
  mutable elided_o2 : int;
  mutable elided_o3 : int;
  mutable elided_control : int;
  mutable skipped_scope : int;
  mutable skipped_input : int;
  mutable summary_deps : int;
}

type t

val create : ?opts:opts -> Program.t -> t
val stats : t -> stats
val graph : t -> Ddg.t
val buffer : t -> Trace_buffer.t

(** First step still inside the buffer's retained window. *)
val window_start : t -> int

(** Length of the retained execution window, in dynamic
    instructions. *)
val window_length : t -> int

(** Average stored bytes per executed instruction. *)
val bytes_per_instr : t -> float

(** Feed one event (exposed for harnesses that gate or multiplex
    events themselves; {!attach} wires this up as a VM tool). *)
val process : t -> Event.exec -> unit

(** Attach to a machine; all modelled overhead is charged there. *)
val attach : t -> Machine.t -> unit

(** Attach with an event filter: only events satisfying [keep] are
    traced.  Instrumentation is selective, so the DBI dispatch cost is
    paid per *kept* event rather than per instruction. *)
val attach_filtered : t -> Machine.t -> keep:(Event.exec -> bool) -> unit

(** Prune the graph to the final window and return it with the window
    start (to be called after the run). *)
val final_graph : t -> Ddg.t * int

(** Register the tracer's statistics in an observability registry as
    derived gauges ([core.ontrac.*] and [core.trace_buffer.*]; see
    [docs/observability.md]).  Snapshot-time reads only — the tracing
    hot path is untouched. *)
val register_obs : t -> Dift_obs.Registry.t -> unit

(** Put the circular trace buffer on an execution timeline: every
    [sample_every] traced instructions (default [1024]) a
    [trace_buffer.stored_bytes] counter sample records the fill
    level, and every append that evicts records emits a
    [trace_buffer.drain] duration span (category [core], with the
    eviction count as an argument) — the §2.1 bounded-window story as
    a fill ramp punctuated by drain pulses.
    @raise Invalid_argument if [sample_every < 1]. *)
val set_trace : ?sample_every:int -> t -> Dift_obs.Trace.t -> unit

val pp_stats : stats Fmt.t
