(** Taint domains.

    The paper instantiates its DIFT framework with several metadata
    domains: boolean taint for attack detection, program-counter taint
    for attack root-cause location (§3.3), and input-id sets for data
    lineage (§3.4).  Each is a join-semilattice with a distinguished
    bottom ("untainted") element, a source injection and a write
    transfer function. *)

(** A type-equality witness: [('a, 'b) eq] is inhabited exactly when
    ['a] and ['b] are the same type, and matching on {!Refl} makes
    that equality available to the type checker. *)
type (_, _) eq = Refl : ('a, 'a) eq

module type DOMAIN = sig
  type t

  val name : string

  (** The untainted element. *)
  val bottom : t

  val is_bottom : t -> bool
  val equal : t -> t -> bool

  (** [Some Refl] iff [t] is [bool] with [bottom = false] and
      [join = (||)] — the license for the engine's monomorphic
      boolean fast path (see {!Engine.Make}).  Everything else must
      answer [None]. *)
  val as_bool : (t, bool) eq option

  (** Least upper bound; combining the taints of an instruction's
      operands. *)
  val join : t -> t -> t

  (** Taint injected when input word [input_index] is read at dynamic
      step [step]. *)
  val source : input_index:int -> step:int -> t

  (** Transfer applied when a value with taint [t] is written by the
      instruction at [(fname, pc)], dynamic step [step].  Most domains
      return [t] unchanged; the PC domain replaces any non-bottom
      taint with the identity of the writing instruction.  The engine
      skips this transfer for pure copies (loads, moves, returns). *)
  val at_write : step:int -> fname:string -> pc:int -> t -> t

  (** Approximate shadow footprint of one value, in machine words —
      used for the memory-overhead experiments. *)
  val words : t -> int

  val pp : t Fmt.t
end

(** Boolean taint: tainted / untainted. *)
module Bool : DOMAIN with type t = bool

(** The identity of a static instruction site and its dynamic
    instance, carried by PC taint. *)
type site = { fname : string; pc : int; step : int }

(** PC taint (paper §3.3): a tainted value carries the site of the
    most recent instruction that wrote it; [None] means untainted.
    When an attack is detected, the sink's taint directly names the
    candidate root-cause statement. *)
module Pc : DOMAIN with type t = site option

module Int_set : Set.S with type elt = int

(** Input-set taint (naive lineage, §3.4): the set of input indices
    the value transitively depends on. *)
module Input_set : DOMAIN with type t = Int_set.t
