(** A shared periodic sampler: {e one} domain serving any number of
    periodic jobs (heartbeat writers, watchdog checks, …), so
    concurrent instrumented runs no longer cost one domain per output
    channel.

    The sampler domain is spawned lazily by the first {!add} and wakes
    every few milliseconds to run whichever jobs are due.  Jobs run on
    the sampler domain, one at a time, while holding the sampler's
    lock — which is what makes {!remove} synchronous: once it returns,
    the job's callback is not running and will never run again, so the
    caller may safely reclaim whatever the callback touched (close a
    file, write a final record from its own domain, …).

    Contract for callbacks: be quick (they delay every other job), be
    cross-domain-safe (they run on the sampler domain), and never call
    back into the same sampler (the lock is held — it would
    deadlock). *)

type t
type job

(** A sampler with no jobs and no domain yet. *)
val create : unit -> t

(** [add t ~interval_ms fn] schedules [fn] every [interval_ms]
    milliseconds, spawning the sampler domain if this is the first
    job.  The first run is one interval from now.  A slow callback
    delays its own next run (no catch-up bursts).

    @raise Invalid_argument if [interval_ms < 1] or [t] is stopped. *)
val add : t -> ?name:string -> interval_ms:int -> (unit -> unit) -> job

(** Unschedule the job.  Synchronous: on return the callback is not
    running and will never run again.  Removing an unknown or
    already-removed job is a no-op. *)
val remove : t -> job -> unit

(** Jobs currently scheduled. *)
val jobs : t -> int

(** Times the job's callback has run. *)
val runs : job -> int

val job_name : job -> string

(** Stop the sampler domain and join it (idempotent).  Remaining jobs
    are simply never run again; remove them first if their owners need
    the synchronous-removal guarantee. *)
val stop : t -> unit
