/* Monotonic clock primitive for Dift_obs.Clock.

   CLOCK_MONOTONIC never steps backwards (NTP slews it but cannot jump
   it), which is what every busy/wall/span duration in the tree needs;
   Unix.gettimeofday is wall time and can move both ways.  OCaml 5.1's
   Unix has no clock_gettime binding, so this is the one-line stub. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

int64_t dift_clock_monotonic_ns(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * INT64_C(1000000000) + (int64_t)ts.tv_nsec;
}

CAMLprim value dift_clock_monotonic_ns_byte(value unit)
{
  (void)unit;
  return caml_copy_int64(dift_clock_monotonic_ns());
}
