(** The heartbeat sampler: periodic registry snapshots appended to a
    JSONL file, so a wedged or crashed run is diagnosable from
    outside while it is still running (tail the file) and after the
    fact (crash bundles embed the first beat as the delta baseline).

    {!start} truncates [file], writes beat 0 immediately, then spawns
    a sampler domain that appends one line per interval:

    {v {"seq":N,"t_ns":NANOSECONDS_SINCE_START,"metrics":{…}} v}

    where [metrics] is the registry's documented JSON snapshot schema,
    compacted to one line.  Every line is flushed as written, so a
    reader always sees complete records.  {!stop} writes one final
    beat and detaches from the sampler; it is idempotent.

    Periodic beats are written by a {!Sampler} job, so any number of
    heartbeats (and other periodic channels, e.g. watchdog checks)
    can share {e one} sampler domain — pass [?sampler] to share;
    without it the heartbeat owns a private sampler, preserving the
    historical one-domain behaviour.

    Snapshotting from a separate domain is safe by the registry's
    contract (atomic cells; derived gauges must themselves be
    cross-domain-safe, which all gauges in this tree are). *)

type t

(** [start ?interval_ms ?sampler reg ~file] begins sampling [reg] into
    [file] every [interval_ms] (default [200]) milliseconds.  With
    [?sampler] the beats ride the given shared sampler (which the
    caller stops); without it a private sampler is created and stopped
    by {!stop}.

    @raise Invalid_argument if [interval_ms < 1].
    @raise Sys_error if [file] cannot be created. *)
val start : ?interval_ms:int -> ?sampler:Sampler.t -> Registry.t -> file:string -> t

(** The first beat's metrics (the snapshot taken synchronously inside
    {!start}), as the registry JSON — the baseline crash bundles embed
    for metric-delta rendering. *)
val first : t -> Json.t

(** Beats written so far (including beat 0). *)
val beats : t -> int

(** Write a final beat, stop the sampler domain and join it.
    Idempotent; returns the total number of beats written. *)
val stop : t -> int
