(** The streaming execution tracer; see the interface for the design.

    Hot path: one [Domain.DLS.get], a list cons and an atomic length
    bump into the calling domain's private buffer — no locks, no
    shared writes except the atomic counters.  The tracer-wide mutex
    guards only the buffer list (taken once per recording domain, at
    its first event) and merge-time iteration. *)

type kind =
  | Span of { dur_ns : int }
  | Instant
  | Sample of { value : int }

type event = {
  name : string;
  cat : string;
  ts_ns : int;
  tid : int;
  kind : kind;
  args : (string * Json.t) list;
}

(* One per recording domain.  [evs]/[b_name] are written only by the
   owning domain and read only after it quiesced (merge time); [len]
   is atomic so accounting gauges may read it live from any domain.
   [epoch] is a seqlock: the owner makes it odd before touching
   [evs]/[b_name] and even again after, so merge can prove the plain
   fields were stable while it read them. *)
type buf = {
  b_tid : int;
  mutable b_name : string;
  mutable evs : event list;  (** newest first *)
  len : int Atomic.t;
  epoch : int Atomic.t;  (** odd while the owner mutates; even at rest *)
}

type t = {
  cap : int;  (** per-domain event cap *)
  epoch_ns : int;
  lock : Mutex.t;
  bufs : buf list ref;  (** every domain's buffer; guarded by [lock] *)
  key : buf Domain.DLS.key;
  t_dropped : int Atomic.t;
  obs_dropped : Registry.counter option Atomic.t;
      (** mirror drops into the registry once {!register_obs} ran *)
}

(* Monotonic, shared with every other duration in the tree: an NTP
   step must not produce negative span durations (Clock's contract). *)
let wall_ns () = Clock.now_ns ()

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  let lock = Mutex.create () in
  let bufs = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let tid = (Domain.self () :> int) in
        let b =
          { b_tid = tid; b_name = Fmt.str "domain-%d" tid; evs = [];
            len = Atomic.make 0; epoch = Atomic.make 0 }
        in
        Mutex.lock lock;
        bufs := b :: !bufs;
        Mutex.unlock lock;
        b)
  in
  {
    cap = capacity;
    epoch_ns = wall_ns ();
    lock;
    bufs;
    key;
    t_dropped = Atomic.make 0;
    obs_dropped = Atomic.make None;
  }

let capacity t = t.cap
let now_ns t = wall_ns () - t.epoch_ns

let name_track t name =
  let b = Domain.DLS.get t.key in
  Atomic.incr b.epoch;
  b.b_name <- name;
  Atomic.incr b.epoch

(* -- recording ---------------------------------------------------------- *)

let record t ~name ~cat ~ts_ns ~kind ~args =
  let b = Domain.DLS.get t.key in
  if Atomic.get b.len >= t.cap then begin
    Atomic.incr t.t_dropped;
    match Atomic.get t.obs_dropped with
    | Some c -> Registry.incr c
    | None -> ()
  end
  else begin
    (* Seqlock write side: odd epoch brackets the plain-field update.
       The atomic bumps double as release fences, so a merger that
       observes an even, unchanged epoch also observes the list cons
       it brackets. *)
    Atomic.incr b.epoch;
    b.evs <- { name; cat; ts_ns; tid = b.b_tid; kind; args } :: b.evs;
    Atomic.incr b.len;
    Atomic.incr b.epoch
  end

let instant t ?(cat = "misc") ?(args = []) name =
  record t ~name ~cat ~ts_ns:(now_ns t) ~kind:Instant ~args

let counter t ?(cat = "misc") name value =
  record t ~name ~cat ~ts_ns:(now_ns t) ~kind:(Sample { value }) ~args:[]

let complete_ns t ?(cat = "misc") ?(args = []) name ~start_ns ~dur_ns =
  record t ~name ~cat ~ts_ns:start_ns ~kind:(Span { dur_ns = max 0 dur_ns })
    ~args

let span t ?cat ?args name f =
  let t0 = now_ns t in
  Fun.protect
    ~finally:(fun () ->
      complete_ns t ?cat ?args name ~start_ns:t0 ~dur_ns:(now_ns t - t0))
    f

(* -- accounting --------------------------------------------------------- *)

let with_bufs t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () -> f !(t.bufs)

let buffered t =
  with_bufs t (List.fold_left (fun acc b -> acc + Atomic.get b.len) 0)

let dropped t = Atomic.get t.t_dropped

let register_obs t reg =
  let c =
    Registry.counter reg "trace.dropped"
      ~help:"trace events dropped at the per-domain capacity cap"
  in
  (* Carry over drops recorded before the registry was attached — as
     the *delta* against what the counter already holds, so the call
     is idempotent: re-attaching the same registry (whose counter
     already carries earlier drops) adds only the drops it has not
     mirrored yet, and a fresh registry (counter at zero) receives the
     full count.  A plain [add (dropped t)] re-added the carried-over
     count on every call and double-counted. *)
  Registry.add c (Atomic.get t.t_dropped - Registry.value c);
  Atomic.set t.obs_dropped (Some c);
  Registry.gauge_fn reg "trace.buffered_events"
    ~help:"trace events currently buffered, all domains" (fun () ->
      buffered t);
  Registry.gauge_fn reg "trace.domains" ~help:"domains that recorded events"
    (fun () -> with_bufs t List.length);
  Registry.gauge_fn reg "trace.capacity_per_domain"
    ~help:"trace event cap per recording domain" (fun () -> t.cap)

(* -- merge and export --------------------------------------------------- *)

(* Counter series get synthetic track ids well above any plausible
   domain id, assigned in order of first appearance in the merged
   timeline (deterministic given the recorded data). *)
let counter_tid_base = 0x1000

let merged t =
  let bufs = with_bufs t (fun bs -> bs) in
  (* Merge-time precondition: every traced domain has quiesced (the
     caller joined it).  [evs]/[b_name] are plain mutable fields owned
     by the recording domain, so merging while it still records is a
     data race.  Enforcement is a per-buffer seqlock: the owner holds
     an odd epoch for the duration of each mutation, so reading the
     epoch before and after the snapshot proves the plain fields were
     stable in between — unlike the previous length-snapshot check, a
     torn read cannot slip through the window between two length
     loads.  This catches a live recorder, it does not license one. *)
  let torn b =
    invalid_arg
      (Fmt.str
         "Trace: merge while domain %d is still recording (join every \
          traced domain before events/tracks/to_json/write)"
         b.b_tid)
  in
  let snapshot b =
    let e0 = Atomic.get b.epoch in
    if e0 land 1 <> 0 then torn b;
    let evs = b.evs in
    let name = b.b_name in
    if Atomic.get b.epoch <> e0 then torn b;
    (evs, name)
  in
  let snaps = List.map (fun b -> (b, snapshot b)) bufs in
  let evs =
    List.concat_map (fun (_, (evs, _)) -> List.rev evs) snaps
    |> List.stable_sort (fun a b ->
           compare (a.ts_ns, a.tid) (b.ts_ns, b.tid))
  in
  let ctids = Hashtbl.create 8 in
  let next = ref counter_tid_base in
  let evs =
    List.map
      (fun e ->
        match e.kind with
        | Sample _ ->
            let tid =
              match Hashtbl.find_opt ctids e.name with
              | Some tid -> tid
              | None ->
                  let tid = !next in
                  incr next;
                  Hashtbl.add ctids e.name tid;
                  tid
            in
            { e with tid }
        | Span _ | Instant -> e)
      evs
  in
  let domain_tracks =
    List.map (fun (b, (_, name)) -> (b.b_tid, name)) snaps
    |> List.sort compare
  in
  let counter_tracks =
    Hashtbl.fold (fun name tid acc -> (tid, name) :: acc) ctids []
    |> List.sort compare
  in
  (domain_tracks @ counter_tracks, evs)

let events t = snd (merged t)
let tracks t = fst (merged t)

let to_json t =
  let tracks, evs = merged t in
  let us ns = Json.Float (float_of_int ns /. 1e3) in
  let meta =
    Json.obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.obj [ ("name", Json.String "dift") ]);
      ]
    :: List.map
         (fun (tid, name) ->
           Json.obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 1);
               ("tid", Json.Int tid);
               ("args", Json.obj [ ("name", Json.String name) ]);
             ])
         tracks
  in
  let ev_json e =
    let shape =
      match e.kind with
      | Span { dur_ns } ->
          [ ("ph", Json.String "X"); ("ts", us e.ts_ns); ("dur", us dur_ns) ]
      | Instant ->
          [ ("ph", Json.String "i"); ("ts", us e.ts_ns);
            ("s", Json.String "t") ]
      | Sample _ -> [ ("ph", Json.String "C"); ("ts", us e.ts_ns) ]
    in
    let args =
      match e.kind with
      | Sample { value } -> ("value", Json.Int value) :: e.args
      | Span _ | Instant -> e.args
    in
    Json.obj
      ([ ("name", Json.String e.name); ("cat", Json.String e.cat) ]
      @ shape
      @ [ ("pid", Json.Int 1); ("tid", Json.Int e.tid) ]
      @ (if args = [] then [] else [ ("args", Json.obj args) ]))
  in
  Json.List (meta @ List.map ev_json evs)

let write t file =
  let s = Json.to_string (to_json t) in
  if file = "-" then print_string s
  else begin
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
    output_string oc s
  end
