(** The streaming execution tracer — the {e timeline} companion to the
    {!Registry} aggregates.

    The paper's §2.1 argument is temporal: ONTRAC and the helper-core
    runtime win by {e overlapping} application execution with taint
    propagation.  Counters and end-of-run histograms cannot show that
    overlap; this module records {e when} things happened — duration
    spans, instant markers and counter samples — and exports the
    standard Chrome trace-event JSON array, loadable in Perfetto or
    [chrome://tracing], so the compute/track overlap and the ring's
    backpressure waves are literally visible as parallel tracks.

    {2 Buffering model}

    Recording must not perturb the two-domain runtime it observes, so
    there are no locks on the hot path: each recording domain owns a
    private bounded buffer (created on that domain's first event via
    domain-local storage) and appends with plain writes.  The tracer's
    only shared mutable state is the atomic drop counter and the
    cold-path buffer list, touched once per domain.

    Buffers are bounded by a per-domain event {e capacity}; once a
    domain's buffer is full, further events from that domain are
    dropped and counted — never silently truncated.  {!register_obs}
    surfaces the drop count as the [trace.dropped] counter in the
    ordinary metrics snapshot.

    {2 Quiescence}

    {!events}, {!tracks}, {!to_json} and {!write} merge the per-domain
    buffers and must only be called when every traced domain has quit
    recording (e.g. after [Domain.join]); the cheap accounting reads
    ({!buffered}, {!dropped}, the registered gauges) are atomic and
    safe from any domain at any time.

    {2 Track mapping (paper §2.1)}

    The two-domain runtime names its tracks ["app"] (the application
    core) and ["helper"] (the DIFT helper core); counter series such as
    [ring.occupancy] render as their own tracks.  See
    [docs/observability.md] for the full event catalogue. *)

type t

(** [create ()] is a fresh tracer; its creation instant is timestamp
    zero.  [capacity] (default [65536]) bounds the buffered events
    {e per recording domain}; events beyond it are dropped and counted.
    @raise Invalid_argument if [capacity < 1]. *)
val create : ?capacity:int -> unit -> t

(** The per-domain event cap. *)
val capacity : t -> int

(** Nanoseconds since the tracer was created — the timebase every
    event timestamp uses (and the one {!complete_ns} expects). *)
val now_ns : t -> int

(** {1 Recording (hot path, lock-free)} *)

(** Name the {e calling} domain's track (shown as the thread name in
    the trace viewer).  Last call wins; default is ["domain-<id>"]. *)
val name_track : t -> string -> unit

(** Record a zero-duration marker. *)
val instant : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> unit

(** [counter t name v] records a sample of the counter series [name];
    each series renders as its own track. *)
val counter : t -> ?cat:string -> string -> int -> unit

(** [span t name f] runs [f ()] and records a duration span covering
    it (recorded even if [f] raises). *)
val span : t -> ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a

(** Record an externally timed duration span; [start_ns] is in the
    {!now_ns} timebase. *)
val complete_ns :
  t ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  start_ns:int ->
  dur_ns:int ->
  unit

(** {1 Accounting (safe from any domain)} *)

(** Events currently buffered, across all domains. *)
val buffered : t -> int

(** Events dropped at the capacity cap. *)
val dropped : t -> int

(** Surface the tracer in a metrics registry: the [trace.dropped]
    counter (drop accounting in the ordinary stats snapshot — the
    anti-silent-truncation guarantee) plus [trace.buffered_events],
    [trace.domains] and [trace.capacity_per_domain] gauges.

    Idempotent: drops recorded before the call are carried over as the
    delta against what the registry's counter already holds, so
    re-attaching the same registry (or attaching a second one) never
    double-counts [trace.dropped]. *)
val register_obs : t -> Registry.t -> unit

(** {1 Merge and export (quiescent tracer only)}

    Every function below reads the per-domain buffers, whose event
    lists are plain mutable state owned by their recording domains —
    so they require every traced domain to have quiesced (been
    joined).  The precondition is {e asserted} with a per-buffer
    seqlock epoch: each recording bracket holds the buffer's epoch odd
    for its duration, and the merge re-reads the epoch after taking
    its snapshot — a buffer mutated mid-merge (or caught mid-mutation)
    raises [Invalid_argument] instead of returning a silently torn
    timeline.  A torn read between two length checks, possible under
    the previous length-snapshot scheme, cannot go undetected. *)

type kind =
  | Span of { dur_ns : int }  (** a duration span *)
  | Instant
  | Sample of { value : int }  (** a counter sample *)

type event = {
  name : string;
  cat : string;  (** category, e.g. ["vm"], ["core"], ["parallel"] *)
  ts_ns : int;  (** start time, {!now_ns} timebase *)
  tid : int;  (** track id: domain id, or a synthetic counter track *)
  kind : kind;
  args : (string * Json.t) list;
}

(** All recorded events merged across domains, sorted by timestamp.
    Counter samples are remapped onto one synthetic track id per
    series name. *)
val events : t -> event list

(** The track ids appearing in {!events} with their display names:
    every per-domain buffer plus one track per counter series. *)
val tracks : t -> (int * string) list

(** The Chrome trace-event JSON array: [thread_name] metadata records
    for every track followed by the events ([ph] ["X"]/["i"]/["C"],
    timestamps in microseconds). *)
val to_json : t -> Json.t

(** [write t file] writes {!to_json} to [file]; ["-"] means stdout. *)
val write : t -> string -> unit
