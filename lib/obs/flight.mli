(** The flight recorder: a bounded, always-on ring of recent
    structured events, one ring per recording domain.

    {2 Purpose}

    The {!Trace} module answers "what did the whole run look like" —
    it buffers everything (up to a large cap) and exports a Chrome
    timeline.  The flight recorder answers a different question:
    "what were the last things each domain did before the crash".  It
    keeps only the most recent [capacity] events per domain in a
    fixed-size ring, overwriting the oldest — so its memory footprint
    is constant no matter how long the run, and it can stay enabled in
    production the way an aircraft flight recorder does.  Crash
    bundles ([Postmortem]) embed each domain's ring tail next to the
    structured error.

    {2 Hot path}

    [record] is one [Domain.DLS.get], a record allocation, an array
    store into the calling domain's private ring and one atomic
    increment — no locks, no blocking, ever.  Overflow overwrites the
    oldest slot and is counted ({!overwritten}), never dropped
    silently and never back-pressuring the recording domain.  The
    recorder-wide mutex guards only the ring list (taken once per
    domain, at its first event).

    {2 Quiescence}

    {!tails} and {!to_json} read the per-domain rings, which are plain
    mutable state owned by their recording domains — call them only
    after every recording domain has quiesced (been joined).  Like
    {!Trace.events}, the precondition is asserted: a ring that moves
    while being read raises [Invalid_argument].  The supervised
    runtimes ([Parallel.run_result] and friends) join every domain
    before returning an error, so bundle assembly is always safe. *)

type t

(** One recorded event.  [a]/[b] are two free-form integer payload
    slots (batch length, shard index, …) and [detail] an optional
    free-form string; their meaning is per-event-name, catalogued in
    [docs/observability.md]. *)
type entry = {
  ts_ns : int;  (** relative to the recorder's creation, monotonic *)
  cat : string;
  name : string;
  a : int;
  b : int;
  detail : string;  (** empty when the event carries none *)
}

(** One domain's recent history, oldest entry first. *)
type tail = {
  t_tid : int;  (** the recording domain's id *)
  t_domain : string;  (** its {!name_domain} label, or ["domain-N"] *)
  t_recorded : int;  (** events this domain recorded in total *)
  t_entries : entry list;  (** the most recent, at most [capacity] *)
}

(** [create ?capacity ()] is a fresh recorder keeping the most recent
    [capacity] (default [512]) events per recording domain.

    @raise Invalid_argument if [capacity < 1]. *)
val create : ?capacity:int -> unit -> t

(** Ring capacity per recording domain. *)
val capacity : t -> int

(** Nanoseconds since the recorder was created (monotonic clock). *)
val now_ns : t -> int

(** Label the calling domain's ring (["app"], ["helper"],
    ["shard-0"], …).  Defaults to ["domain-N"]. *)
val name_domain : t -> string -> unit

(** [record t ~cat name] appends an event to the calling domain's
    ring, timestamped now.  Never blocks; overwrites the oldest entry
    when the ring is full (counted, see {!overwritten}). *)
val record : t -> ?a:int -> ?b:int -> ?detail:string -> cat:string ->
  string -> unit

(** Total events recorded across all domains (including overwritten
    ones).  Safe from any domain at any time. *)
val recorded : t -> int

(** Events lost to ring overwrite across all domains.  Safe from any
    domain at any time. *)
val overwritten : t -> int

(** Number of domains that have recorded at least one event. *)
val domains : t -> int

(** Surface the recorder in a metrics registry: [flight.recorded] and
    [flight.overwritten] gauges (live, cross-domain-safe), plus
    [flight.domains] and [flight.capacity_per_domain]. *)
val register_obs : t -> Registry.t -> unit

(** Each domain's ring tail, ordered by domain id.  Quiescent
    recorder only — see the module preamble.

    @raise Invalid_argument if a ring moves during the read. *)
val tails : t -> tail list

(** The recorder as JSON — the [flight] section of a crash bundle:
    [{capacity, recorded, overwritten, domains: [{tid, name, recorded,
    events: [{ts_ns, cat, name, a, b, detail?}]}]}].  Quiescent
    recorder only.

    @raise Invalid_argument if a ring moves during the read. *)
val to_json : t -> Json.t
