(** The per-domain flight recorder; see the interface for the design.

    Hot path: one [Domain.DLS.get], a record allocation, an array
    store into the calling domain's private ring and two atomic bumps
    — no locks, no blocking.  The recorder-wide mutex guards only the
    ring list (taken once per recording domain, at its first event)
    and read-time iteration. *)

type entry = {
  ts_ns : int;
  cat : string;
  name : string;
  a : int;
  b : int;
  detail : string;
}

type tail = {
  t_tid : int;
  t_domain : string;
  t_recorded : int;
  t_entries : entry list;
}

let dummy = { ts_ns = 0; cat = ""; name = ""; a = 0; b = 0; detail = "" }

(* One per recording domain.  [slots]/[r_name] are written only by the
   owning domain; [written] is an atomic mirror of the write count so
   accounting gauges may read it live from any domain.  [epoch] is a
   seqlock (odd while the owner mutates) so {!tails} can prove it read
   an untorn ring. *)
type ring = {
  r_tid : int;
  mutable r_name : string;
  slots : entry array;
  written : int Atomic.t;
  epoch : int Atomic.t;
}

type t = {
  cap : int;
  epoch_ns : int;
  lock : Mutex.t;
  rings : ring list ref;  (** every domain's ring; guarded by [lock] *)
  key : ring Domain.DLS.key;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity < 1";
  let lock = Mutex.create () in
  let rings = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let tid = (Domain.self () :> int) in
        let r =
          { r_tid = tid; r_name = Fmt.str "domain-%d" tid;
            slots = Array.make capacity dummy; written = Atomic.make 0;
            epoch = Atomic.make 0 }
        in
        Mutex.lock lock;
        rings := r :: !rings;
        Mutex.unlock lock;
        r)
  in
  { cap = capacity; epoch_ns = Clock.now_ns (); lock; rings; key }

let capacity t = t.cap
let now_ns t = Clock.now_ns () - t.epoch_ns

let name_domain t name =
  let r = Domain.DLS.get t.key in
  Atomic.incr r.epoch;
  r.r_name <- name;
  Atomic.incr r.epoch

let record t ?(a = 0) ?(b = 0) ?(detail = "") ~cat name =
  let r = Domain.DLS.get t.key in
  let e = { ts_ns = now_ns t; cat; name; a; b; detail } in
  (* Overflow overwrites the oldest slot — bounded memory, never
     blocking; the loss is visible as [written - capacity]. *)
  Atomic.incr r.epoch;
  let w = Atomic.get r.written in
  r.slots.(w mod t.cap) <- e;
  Atomic.incr r.written;
  Atomic.incr r.epoch

(* -- accounting (safe live, from any domain) ---------------------------- *)

let with_rings t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  f !(t.rings)

let recorded t =
  with_rings t (List.fold_left (fun acc r -> acc + Atomic.get r.written) 0)

let overwritten t =
  with_rings t
    (List.fold_left
       (fun acc r -> acc + max 0 (Atomic.get r.written - t.cap))
       0)

let domains t = with_rings t List.length

let register_obs t reg =
  Registry.gauge_fn reg "flight.recorded"
    ~help:"flight-recorder events recorded, all domains" (fun () ->
      recorded t);
  Registry.gauge_fn reg "flight.overwritten"
    ~help:"flight-recorder events lost to ring overwrite" (fun () ->
      overwritten t);
  Registry.gauge_fn reg "flight.domains"
    ~help:"domains that recorded flight events" (fun () -> domains t);
  Registry.gauge_fn reg "flight.capacity_per_domain"
    ~help:"flight-recorder ring capacity per domain" (fun () -> t.cap)

(* -- tail extraction (quiescent recorder only) -------------------------- *)

let torn r =
  invalid_arg
    (Fmt.str
       "Flight: tail read while domain %d is still recording (join every \
        recording domain before tails/to_json)"
       r.r_tid)

let tail_of_ring t r =
  (* Seqlock read side, mirroring [Trace.merged]: an even, unchanged
     epoch around the snapshot proves no slot was overwritten while we
     copied it. *)
  let e0 = Atomic.get r.epoch in
  if e0 land 1 <> 0 then torn r;
  let w = Atomic.get r.written in
  let name = r.r_name in
  let count = min w t.cap in
  let entries =
    List.init count (fun i ->
        let idx = w - count + i in
        r.slots.(idx mod t.cap))
  in
  if Atomic.get r.epoch <> e0 then torn r;
  { t_tid = r.r_tid; t_domain = name; t_recorded = w; t_entries = entries }

let tails t =
  with_rings t (fun rs -> rs)
  |> List.map (tail_of_ring t)
  |> List.sort (fun a b -> compare a.t_tid b.t_tid)

(* -- export ------------------------------------------------------------- *)

let entry_json e =
  Json.obj
    ([
       ("ts_ns", Json.Int e.ts_ns);
       ("cat", Json.String e.cat);
       ("name", Json.String e.name);
       ("a", Json.Int e.a);
       ("b", Json.Int e.b);
     ]
    @ if e.detail = "" then [] else [ ("detail", Json.String e.detail) ])

let to_json t =
  let ts = tails t in
  Json.obj
    [
      ("capacity", Json.Int t.cap);
      ("recorded", Json.Int (recorded t));
      ("overwritten", Json.Int (overwritten t));
      ( "domains",
        Json.List
          (List.map
             (fun tl ->
               Json.obj
                 [
                   ("tid", Json.Int tl.t_tid);
                   ("name", Json.String tl.t_domain);
                   ("recorded", Json.Int tl.t_recorded);
                   ("events", Json.List (List.map entry_json tl.t_entries));
                 ])
             ts) );
    ]
