(** Monotonic clock; see the interface.  The native stub returns an
    unboxed [int64] and allocates nothing, so reading the clock is as
    cheap as the [gettimeofday] call it replaces. *)

external monotonic_ns : unit -> (int64[@unboxed])
  = "dift_clock_monotonic_ns_byte" "dift_clock_monotonic_ns"
[@@noalloc]

let now_ns () = Int64.to_int (monotonic_ns ())
