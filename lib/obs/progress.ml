(** The shared atomic progress table; see the interface for the
    contract.

    Each leg is one atomic epoch whose {e parity} encodes the leg's
    state: even = not blocked, odd = inside a potentially-blocking
    region.  [enter]/[leave] are single increments (flipping parity),
    [tick] adds two (parity preserved) — so every operation is one
    atomic RMW and a watchdog can reconstruct both "is this leg
    blocked" and "has it moved" from a single load. *)

type leg = {
  l_id : int;
  l_name : string;
  l_epoch : int Atomic.t;
}

type t = {
  lock : Mutex.t;
  mutable legs_rev : leg list;  (** newest first *)
  next_id : int Atomic.t;
}

let create () =
  { lock = Mutex.create (); legs_rev = []; next_id = Atomic.make 0 }

let leg t name =
  let l =
    {
      l_id = Atomic.fetch_and_add t.next_id 1;
      l_name = name;
      l_epoch = Atomic.make 0;
    }
  in
  Mutex.lock t.lock;
  t.legs_rev <- l :: t.legs_rev;
  Mutex.unlock t.lock;
  l

let name l = l.l_name
let id l = l.l_id
let epoch l = Atomic.get l.l_epoch
let armed l = Atomic.get l.l_epoch land 1 = 1
let enter l = Atomic.incr l.l_epoch
let leave l = Atomic.incr l.l_epoch
let tick l = ignore (Atomic.fetch_and_add l.l_epoch 2 : int)

let legs t =
  Mutex.lock t.lock;
  let ls = t.legs_rev in
  Mutex.unlock t.lock;
  List.rev ls

(* The global pulse: any enter/leave/tick anywhere changes the sum.
   Summing over a snapshot of the registration list is safe — legs are
   append-only and epochs are atomics. *)
let total t = List.fold_left (fun acc l -> acc + epoch l) 0 (legs t)

let register_obs t reg =
  Registry.gauge_fn reg "progress.legs" ~help:"registered progress legs"
    (fun () -> List.length (legs t));
  Registry.gauge_fn reg "progress.total_epoch"
    ~help:"sum of all leg epochs (the global progress pulse)" (fun () ->
      total t)
