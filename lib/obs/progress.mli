(** A shared atomic progress table: named {e legs}, one per blocking
    seam of a concurrent protocol, each publishing a progress epoch
    that any domain may sample.

    A leg's epoch is a single atomic counter whose {e parity} encodes
    the leg's state: even means "not blocked", odd means "inside a
    potentially-blocking region".  {!enter} and {!leave} bracket a
    blocking region (one increment each, flipping parity); {!tick}
    records non-blocking progress (adds two, preserving parity).  A
    watchdog sampling the table can therefore tell, from one load per
    leg, whether the leg is currently blocked {e and} whether it has
    moved since the last sample — and {!total} gives a global pulse
    that changes whenever {e anything} moves.

    Registration is cheap and may happen at any time, from any domain
    (a mutex guards the append-only list); the per-operation cost on
    the instrumented seams is one atomic read-modify-write, and seams
    that never block pay nothing. *)

type t
(** A progress table. *)

type leg
(** One registered seam. *)

val create : unit -> t

(** [leg t name] registers a new leg.  Names are not required to be
    unique (two runs over one table may reuse a seam name); {!id}
    disambiguates. *)
val leg : t -> string -> leg

val name : leg -> string

(** A table-unique identity, in registration order. *)
val id : leg -> int

(** The leg's epoch.  Odd = currently inside a blocking region. *)
val epoch : leg -> int

(** [epoch l] is odd: the leg is inside an {!enter}/{!leave} pair. *)
val armed : leg -> bool

(** Entering a potentially-blocking region (epoch becomes odd).  Must
    be balanced by {!leave}, including on the exception path. *)
val enter : leg -> unit

(** Left the blocking region (epoch becomes even). *)
val leave : leg -> unit

(** Non-blocking progress: the epoch advances by two, so parity (and
    thus {!armed}) is preserved.  Call once per unit of useful work
    (e.g. per consumed batch) so a sampler can distinguish "busy" from
    "wedged". *)
val tick : leg -> unit

(** Every registered leg, in registration order. *)
val legs : t -> leg list

(** Sum of all epochs — the global progress pulse.  Unchanged between
    two samples iff no leg moved at all. *)
val total : t -> int

(** Publish [progress.legs] and [progress.total_epoch] gauges. *)
val register_obs : t -> Registry.t -> unit
