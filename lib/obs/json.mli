(** A minimal JSON tree and printer.

    The observability layer needs to emit machine-readable snapshots
    ([diftc stats], [BENCH_*.json]) without pulling a JSON dependency
    into the build; this module is the few dozen lines that requires.
    Output is deterministic (object members print in insertion order)
    so snapshot files diff cleanly across runs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [obj fields] is a JSON object; a convenience for [Obj]. *)
val obj : (string * t) list -> t

(** Pretty-printer (2-space indentation, stable member order). *)
val pp : t Fmt.t

(** [to_string j] is the indented textual rendering of [j], with a
    trailing newline — suitable to write to a file as-is. *)
val to_string : t -> string
