(** A minimal JSON tree and printer.

    The observability layer needs to emit machine-readable snapshots
    ([diftc stats], [BENCH_*.json]) without pulling a JSON dependency
    into the build; this module is the few dozen lines that requires.
    Output is deterministic (object members print in insertion order)
    so snapshot files diff cleanly across runs. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [obj fields] is a JSON object; a convenience for [Obj]. *)
val obj : (string * t) list -> t

(** Pretty-printer (2-space indentation, stable member order). *)
val pp : t Fmt.t

(** [to_string j] is the indented textual rendering of [j], with a
    trailing newline — suitable to write to a file as-is. *)
val to_string : t -> string

(** [to_compact_string j] is [j] on a single line with no whitespace
    — the shape one JSONL record wants (heartbeat files append one
    compact object per line). No trailing newline. *)
val to_compact_string : t -> string

(** [of_string s] parses a JSON document. Accepts everything this
    module prints (and standard JSON generally; [\uXXXX] escapes
    outside the BMP are not supported). Numbers parse as [Int] when
    they fit, else [Float]. Exists so [diftc inspect] can read crash
    bundles back without a JSON dependency. *)
val of_string : string -> (t, string) result

(** [member name j] is the value of field [name] when [j] is an [Obj]
    that has one, else [None]. *)
val member : string -> t -> t option
