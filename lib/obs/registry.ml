(** The metrics registry; see the interface for the design.

    Update cells are [int Atomic.t], so the hot-path operations are
    single unboxed atomic read-modify-writes: no allocation, no lock,
    and safely readable from a concurrently snapshotting domain.  The
    registry lock guards only the metric list (registration and
    snapshot iteration), never an update. *)

type counter = int Atomic.t
type gauge = int Atomic.t

type histogram = {
  h_bounds : int array;  (** inclusive upper bounds, ascending *)
  h_counts : int Atomic.t array;  (** length = bounds + 1 (overflow) *)
  h_sum : int Atomic.t;
}

type span = { s_count : int Atomic.t; s_total_ns : int Atomic.t }

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_gauge_fn of (unit -> int) ref
  | M_histogram of histogram
  | M_span of span

type t = {
  lock : Mutex.t;
  mutable metrics : (string * string * metric) list;  (** newest first *)
}

let create () = { lock = Mutex.create (); metrics = [] }

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_gauge_fn _ -> "gauge"
  | M_histogram _ -> "histogram"
  | M_span _ -> "span"

(* Register [fresh ()] under [name], or return the existing metric of
   the same kind; [same] decides compatibility and may rebind (derived
   gauges). *)
let register t name help ~same ~fresh =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  match List.find_opt (fun (n, _, _) -> n = name) t.metrics with
  | Some (_, _, m) -> (
      match same m with
      | Some m -> m
      | None ->
          invalid_arg
            (Fmt.str "Registry: %s already registered as a %s" name
               (kind_name m)))
  | None ->
      let m = fresh () in
      t.metrics <- (name, help, m) :: t.metrics;
      m

(* -- counters ----------------------------------------------------------- *)

let counter ?(help = "") t name =
  match
    register t name help
      ~same:(function M_counter _ as m -> Some m | _ -> None)
      ~fresh:(fun () -> M_counter (Atomic.make 0))
  with
  | M_counter c -> c
  | _ -> assert false

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = if n > 0 then ignore (Atomic.fetch_and_add c n)
let value = Atomic.get

(* -- gauges ------------------------------------------------------------- *)

let gauge ?(help = "") t name =
  match
    register t name help
      ~same:(function M_gauge _ as m -> Some m | _ -> None)
      ~fresh:(fun () -> M_gauge (Atomic.make 0))
  with
  | M_gauge g -> g
  | _ -> assert false

let set g n = Atomic.set g n
let gauge_value = Atomic.get

let gauge_fn ?(help = "") t name f =
  ignore
    (register t name help
       ~same:(function
         | M_gauge_fn r as m ->
             r := f;
             Some m
         | _ -> None)
       ~fresh:(fun () -> M_gauge_fn (ref f)))

(* -- histograms --------------------------------------------------------- *)

let histogram ?(help = "") t name ~buckets =
  if buckets = [] then invalid_arg "Registry.histogram: no buckets";
  let bounds = Array.of_list (List.sort_uniq compare buckets) in
  match
    register t name help
      ~same:(function M_histogram _ as m -> Some m | _ -> None)
      ~fresh:(fun () ->
        M_histogram
          {
            h_bounds = bounds;
            h_counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0;
          })
  with
  | M_histogram h -> h
  | _ -> assert false

(* Bounds are inclusive (<=): a value equal to a bound lands in that
   bound's bucket.  Negative observations are ignored entirely
   (mirroring [add]): they used to land in the lowest bucket while
   decreasing [h_sum], breaking the monotonicity that snapshot
   consumers — and the cumulative Prometheus histogram series — rely
   on. *)
let observe h v =
  if v >= 0 then begin
    let n = Array.length h.h_bounds in
    let i = ref 0 in
    while !i < n && v > Array.unsafe_get h.h_bounds !i do
      Stdlib.incr i
    done;
    ignore (Atomic.fetch_and_add (Array.unsafe_get h.h_counts !i) 1);
    ignore (Atomic.fetch_and_add h.h_sum v)
  end

let observations h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.h_counts

(* -- spans -------------------------------------------------------------- *)

let span ?(help = "") t name =
  match
    register t name help
      ~same:(function M_span _ as m -> Some m | _ -> None)
      ~fresh:(fun () ->
        M_span { s_count = Atomic.make 0; s_total_ns = Atomic.make 0 })
  with
  | M_span s -> s
  | _ -> assert false

(* Monotonic (Clock): an NTP step mid-[time] must not record a
   negative or inflated duration. *)
let now_ns () = Clock.now_ns ()

let record_ns s ns =
  ignore (Atomic.fetch_and_add s.s_count 1);
  if ns > 0 then ignore (Atomic.fetch_and_add s.s_total_ns ns)

let time s f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> record_ns s (now_ns () - t0)) f

let span_total_ns s = Atomic.get s.s_total_ns
let span_count s = Atomic.get s.s_count

(* -- snapshots ----------------------------------------------------------- *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of {
      buckets : int list;
      counts : int list;
      count : int;
      sum : int;
    }
  | Span_v of { count : int; total_ns : int; mean_ns : int }

type snapshot = (string * string * value) list

let read_metric = function
  | M_counter c -> Counter_v (Atomic.get c)
  | M_gauge g -> Gauge_v (Atomic.get g)
  | M_gauge_fn f -> Gauge_v (!f ())
  | M_histogram h ->
      let counts = Array.to_list (Array.map Atomic.get h.h_counts) in
      Histogram_v
        {
          buckets = Array.to_list h.h_bounds;
          counts;
          count = List.fold_left ( + ) 0 counts;
          sum = Atomic.get h.h_sum;
        }
  | M_span s ->
      let count = Atomic.get s.s_count in
      let total_ns = Atomic.get s.s_total_ns in
      Span_v
        {
          count;
          total_ns;
          mean_ns = (if count = 0 then 0 else total_ns / count);
        }

let snapshot t =
  let metrics =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
    t.metrics
  in
  (* Derived-gauge callbacks run outside the lock: they may themselves
     touch the registry. *)
  List.rev_map (fun (name, help, m) -> (name, help, read_metric m)) metrics

let find snap name =
  List.find_opt (fun (n, _, _) -> n = name) snap
  |> Option.map (fun (_, _, v) -> v)

let value_to_json = function
  | Counter_v n -> Json.obj [ ("kind", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge_v n -> Json.obj [ ("kind", Json.String "gauge"); ("value", Json.Int n) ]
  | Histogram_v { buckets; counts; count; sum } ->
      Json.obj
        [
          ("kind", Json.String "histogram");
          ("buckets", Json.List (List.map (fun b -> Json.Int b) buckets));
          ("counts", Json.List (List.map (fun c -> Json.Int c) counts));
          ("count", Json.Int count);
          ("sum", Json.Int sum);
        ]
  | Span_v { count; total_ns; mean_ns } ->
      Json.obj
        [
          ("kind", Json.String "span");
          ("count", Json.Int count);
          ("total_ns", Json.Int total_ns);
          ("mean_ns", Json.Int mean_ns);
        ]

(* Group by the segment before the first dot, preserving registration
   order of both groups and members. *)
let to_json snap =
  let split name =
    match String.index_opt name '.' with
    | Some i ->
        ( String.sub name 0 i,
          String.sub name (i + 1) (String.length name - i - 1) )
    | None -> ("misc", name)
  in
  let order = ref [] (* group names, first-seen order, reversed *) in
  let members = Hashtbl.create 8 (* group -> members, reversed *) in
  List.iter
    (fun (name, _, v) ->
      let g, rest = split name in
      let ms =
        match Hashtbl.find_opt members g with
        | Some ms -> ms
        | None ->
            order := g :: !order;
            []
      in
      Hashtbl.replace members g ((rest, value_to_json v) :: ms))
    snap;
  Json.obj
    (List.rev_map
       (fun g -> (g, Json.obj (List.rev (Hashtbl.find members g))))
       !order)

let write_string file s =
  if file = "-" then print_string s
  else begin
    let oc = open_out file in
    Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
    output_string oc s
  end

let write_json file snap = write_string file (Json.to_string (to_json snap))

(* -- Prometheus text exposition ----------------------------------------- *)

let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  "dift_" ^ Bytes.to_string b

(* HELP text: the exposition format escapes backslash and newline. *)
let prom_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.bprintf buf fmt in
  let header n help typ =
    if help <> "" then line "# HELP %s %s\n" n (prom_escape help);
    line "# TYPE %s %s\n" n typ
  in
  List.iter
    (fun (name, help, v) ->
      match v with
      | Counter_v c ->
          let n = prom_name name in
          header n help "counter";
          line "%s %d\n" n c
      | Gauge_v g ->
          let n = prom_name name in
          header n help "gauge";
          line "%s %d\n" n g
      | Histogram_v { buckets; counts; count; sum } ->
          let n = prom_name name in
          header n help "histogram";
          (* cumulative buckets; the trailing overflow count is folded
             into the +Inf bucket, which always equals [count] *)
          let cum = ref 0 in
          List.iteri
            (fun i b ->
              cum := !cum + List.nth counts i;
              line "%s_bucket{le=\"%d\"} %d\n" n b !cum)
            buckets;
          line "%s_bucket{le=\"+Inf\"} %d\n" n count;
          line "%s_sum %d\n" n sum;
          line "%s_count %d\n" n count
      | Span_v { count; total_ns; _ } ->
          let n = prom_name name ^ "_ns" in
          header n help "summary";
          line "%s_sum %d\n" n total_ns;
          line "%s_count %d\n" n count)
    snap;
  Buffer.contents buf

let write_prometheus file snap = write_string file (to_prometheus snap)
