(** The shared periodic sampler; see the interface for the contract.

    One domain serves every job.  Jobs run {e while holding the
    sampler lock}, which is what makes {!remove} synchronous: once
    [remove] has taken the lock and unlinked the job, the callback is
    provably not running and never will again.  Callbacks must
    therefore be quick and must not call back into this module. *)

type job = {
  j_name : string;
  j_interval_ns : int;
  mutable j_due_ns : int;
  j_fn : unit -> unit;
  mutable j_runs : int;
}

type t = {
  lock : Mutex.t;
  mutable jobs : job list;  (** registration order *)
  stop_flag : bool Atomic.t;
  mutable dom : unit Domain.t option;
}

let create () =
  {
    lock = Mutex.create ();
    jobs = [];
    stop_flag = Atomic.make false;
    dom = None;
  }

(* Small slices so [stop] and newly added short-interval jobs are
   honoured promptly even while long-interval jobs sleep. *)
let slice_s = 0.005

let body t () =
  while not (Atomic.get t.stop_flag) do
    let now = Clock.now_ns () in
    Mutex.lock t.lock;
    List.iter
      (fun j ->
        if now >= j.j_due_ns then begin
          (* schedule from "now", not from the missed deadline: a slow
             callback must not cause a burst of catch-up runs *)
          j.j_due_ns <- now + j.j_interval_ns;
          j.j_runs <- j.j_runs + 1;
          j.j_fn ()
        end)
      t.jobs;
    Mutex.unlock t.lock;
    Unix.sleepf slice_s
  done

let add t ?(name = "job") ~interval_ms fn =
  if interval_ms < 1 then invalid_arg "Sampler.add: interval_ms < 1";
  if Atomic.get t.stop_flag then invalid_arg "Sampler.add: stopped sampler";
  let j =
    {
      j_name = name;
      j_interval_ns = interval_ms * 1_000_000;
      j_due_ns = Clock.now_ns () + (interval_ms * 1_000_000);
      j_fn = fn;
      j_runs = 0;
    }
  in
  Mutex.lock t.lock;
  t.jobs <- t.jobs @ [ j ];
  if t.dom = None then t.dom <- Some (Domain.spawn (body t));
  Mutex.unlock t.lock;
  j

let remove t j =
  Mutex.lock t.lock;
  t.jobs <- List.filter (fun j' -> j' != j) t.jobs;
  Mutex.unlock t.lock

let jobs t =
  Mutex.lock t.lock;
  let n = List.length t.jobs in
  Mutex.unlock t.lock;
  n

let runs j = j.j_runs
let job_name j = j.j_name

let stop t =
  Atomic.set t.stop_flag true;
  (* the domain field is only ever set under the lock, so take it
     under the lock too: [stop] is idempotent and join-once *)
  Mutex.lock t.lock;
  let d = t.dom in
  t.dom <- None;
  Mutex.unlock t.lock;
  match d with Some d -> Domain.join d | None -> ()
