(** The shared monotonic clock every duration in the tree is measured
    on.

    All span, busy-time and utilization accounting used to read
    [Unix.gettimeofday], which is {e wall} time: an NTP step (or a
    manual [date]) mid-run produces negative or wildly inflated
    durations — exactly the silent distortion the time-aware
    instrumentation literature warns against.  This module reads
    [CLOCK_MONOTONIC] instead (via a tiny C stub; OCaml 5.1's [Unix]
    has no [clock_gettime] binding), which NTP may slew but never
    step, so for any two calls in one process

    {[ let a = Clock.now_ns () in … let b = Clock.now_ns () in b >= a ]}

    always holds — durations are non-negative by construction.

    The epoch is unspecified (typically system boot): only
    {e differences} between two readings are meaningful.  Readings are
    process-wide — any two domains' readings are on the same timebase,
    so cross-domain span arithmetic (e.g. app-track vs helper-track
    trace timestamps) is sound. *)

(** Nanoseconds since an arbitrary fixed epoch; monotonic
    non-decreasing within the process.  Allocation-free. *)
val now_ns : unit -> int
