(** The metrics registry — the single observability substrate every
    layer of the system reports through.

    The paper's claims are quantitative (trace bytes per instruction,
    helper-core stalls, shadow-memory footprint, §2.1), so the
    reproduction needs a machine-readable way to observe itself.  A
    {!t} holds named metrics of four kinds:

    - {b counters} — monotonic, atomically incremented integers.  The
      hot-path operations ({!incr}, {!add}) allocate nothing and are
      safe to call from one domain while another domain reads or
      snapshots (the cells are [Atomic.t], so cross-domain reads are
      never torn — unlike the plain [mutable] fields they replace).
    - {b gauges} — last-value integers, either {!set} explicitly or
      {e derived} ({!gauge_fn}): a callback evaluated at snapshot
      time, used to expose an existing component's internal statistics
      without touching its hot path.
    - {b histograms} — fixed upper-bound buckets chosen at
      registration; {!observe} is allocation-free.
    - {b spans} — accumulated wall-clock timers ({!time},
      {!record_ns}).

    Metric names are dot-separated, [group.rest…], and the first
    segment ([vm], [core], [parallel], …) becomes the top-level group
    of the JSON snapshot.  Registration is idempotent: registering an
    existing name of the same kind returns the existing metric
    (re-registering a derived gauge rebinds its callback to the newest
    component instance); registering it with a different kind raises
    [Invalid_argument].  Registration and snapshotting take a lock;
    updates never do.

    A {!snapshot} is a point-in-time reading of every metric.  Because
    updaters may run concurrently on other domains, a snapshot is not
    a consistent cut across metrics — but each individual counter read
    is atomic, and successive snapshots of a counter are monotonic.
    See [docs/observability.md] for the metric catalogue and the JSON
    schema. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

(** [counter t name] registers (or finds) the monotonic counter
    [name]. *)
val counter : ?help:string -> t -> string -> counter

(** Add one.  Allocation-free; callable from any domain. *)
val incr : counter -> unit

(** Add [n] ([n >= 0]; negative increments are ignored to keep the
    counter monotonic). *)
val add : counter -> int -> unit

val value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : ?help:string -> t -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

(** [gauge_fn t name f] registers a derived gauge: [f ()] is evaluated
    at snapshot time (on the snapshotting domain).  Re-registration
    replaces the callback. *)
val gauge_fn : ?help:string -> t -> string -> (unit -> int) -> unit

(** {1 Histograms} *)

type histogram

(** [histogram t name ~buckets] registers a histogram with the given
    {e inclusive} upper bounds (sorted ascending internally): an
    observation [v] lands in the first bucket whose bound [b]
    satisfies [v <= b] — so a value exactly equal to a bound belongs
    to that bound's bucket, not the next one ([<=], never [<]).
    Observations above the last bound land in an implicit overflow
    bucket.
    @raise Invalid_argument if [buckets] is empty. *)
val histogram : ?help:string -> t -> string -> buckets:int list -> histogram

(** Record one observation.  Allocation-free.

    Negative values are ignored — not bucketed, not counted, not
    summed — mirroring {!add}'s treatment of negative increments, so
    the per-bucket counts, [count] and [sum] of successive snapshots
    are all monotonic (which the Prometheus exposition, where
    histogram series are cumulative counters, requires).  They used to
    land in the lowest bucket while {e decreasing} [sum]. *)
val observe : histogram -> int -> unit

(** Observations recorded so far. *)
val observations : histogram -> int

(** {1 Spans} *)

type span

val span : ?help:string -> t -> string -> span

(** [time s f] runs [f ()] and accumulates its wall-clock duration. *)
val time : span -> (unit -> 'a) -> 'a

(** Accumulate an externally measured duration. *)
val record_ns : span -> int -> unit

val span_total_ns : span -> int

(** Durations recorded so far ({!time} calls plus {!record_ns}
    calls). *)
val span_count : span -> int

(** {1 Snapshots} *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of {
      buckets : int list;  (** upper bounds, ascending *)
      counts : int list;  (** per-bucket counts, plus a final overflow *)
      count : int;
      sum : int;
    }
  | Span_v of {
      count : int;
      total_ns : int;
      mean_ns : int;  (** [total_ns / count], [0] when empty *)
    }

(** Metrics in registration order: [(name, help, value)]. *)
type snapshot = (string * string * value) list

val snapshot : t -> snapshot

(** [find snap name] is the reading of metric [name], if present. *)
val find : snapshot -> string -> value option

(** Render a snapshot as the documented JSON schema: one object per
    top-level name group, each metric as a [{"kind": …, …}] object. *)
val to_json : snapshot -> Json.t

(** [write_json file snap] writes {!to_json} to [file]; ["-"] means
    stdout. *)
val write_json : string -> snapshot -> unit

(** Render a snapshot in the Prometheus text exposition format
    (version 0.0.4): per metric a [# HELP] line (when the help string
    is non-empty), a [# TYPE] line and the sample lines.  Metric names
    are prefixed with [dift_] and every non-alphanumeric character
    becomes [_].  Counters and gauges map directly; histograms render
    as cumulative [_bucket{le="…"}] series plus [_sum]/[_count]; spans
    render as a [summary] named [<name>_ns] whose [_sum] is the
    accumulated nanoseconds. *)
val to_prometheus : snapshot -> string

(** [write_prometheus file snap] writes {!to_prometheus} to [file];
    ["-"] means stdout. *)
val write_prometheus : string -> snapshot -> unit
