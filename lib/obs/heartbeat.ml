(** The heartbeat sampler; see the interface for the contract.

    Single-writer discipline: beat 0 is written by the starting domain
    before the job is scheduled ({!Sampler.add} publishes the
    channel), every periodic beat by the shared sampler domain, and
    the final beat again by the stopping domain — {e after}
    {!Sampler.remove}, whose synchronous-removal guarantee is what
    rules out a race with a periodic beat.  No two writes ever
    overlap, so each line in the file is a complete JSON record. *)

type t = {
  interval_ms : int;
  reg : Registry.t;
  start_ns : int;
  beats : int Atomic.t;
  first_json : Json.t;
  oc : out_channel;
  sampler : Sampler.t;
  job : Sampler.job;
  owned : bool;  (** the sampler is private: stop it on {!stop} *)
  mutable stopped : bool;
}

(* One compact line per beat, flushed immediately: an outside reader
   (or a post-crash inspection) always sees complete records, and the
   last line timestamps how far the run got before wedging. *)
let write_beat oc start_ns reg beats =
  let seq = Atomic.fetch_and_add beats 1 in
  let metrics = Registry.to_json (Registry.snapshot reg) in
  let line =
    Json.obj
      [
        ("seq", Json.Int seq);
        ("t_ns", Json.Int (Clock.now_ns () - start_ns));
        ("metrics", metrics);
      ]
  in
  output_string oc (Json.to_compact_string line);
  output_char oc '\n';
  flush oc

let start ?(interval_ms = 200) ?sampler reg ~file =
  if interval_ms < 1 then invalid_arg "Heartbeat.start: interval_ms < 1";
  let oc = open_out file in
  let first_json = Registry.to_json (Registry.snapshot reg) in
  let start_ns = Clock.now_ns () in
  let beats = Atomic.make 0 in
  write_beat oc start_ns reg beats;
  let sampler, owned =
    match sampler with Some s -> (s, false) | None -> (Sampler.create (), true)
  in
  let job =
    Sampler.add sampler ~name:("heartbeat:" ^ file) ~interval_ms (fun () ->
        write_beat oc start_ns reg beats)
  in
  { interval_ms; reg; start_ns; beats; first_json; oc; sampler; job; owned;
    stopped = false }

let first t = t.first_json
let beats t = Atomic.get t.beats

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (* synchronous: after this, no periodic beat is in flight *)
    Sampler.remove t.sampler t.job;
    write_beat t.oc t.start_ns t.reg t.beats;
    close_out_noerr t.oc;
    if t.owned then Sampler.stop t.sampler
  end;
  Atomic.get t.beats
