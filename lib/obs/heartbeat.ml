(** The heartbeat sampler; see the interface for the contract.

    Single-writer discipline: beat 0 is written by the starting domain
    before the sampler spawns ([Domain.spawn] publishes the channel),
    every later beat — including the final one — by the sampler
    domain, which also closes the channel.  No two writes ever race,
    so each line in the file is a complete JSON record. *)

type t = {
  interval_ms : int;
  reg : Registry.t;
  start_ns : int;
  stop_flag : bool Atomic.t;
  beats : int Atomic.t;
  first_json : Json.t;
  mutable sampler : unit Domain.t option;  (** [None] once joined *)
}

(* One compact line per beat, flushed immediately: an outside reader
   (or a post-crash inspection) always sees complete records, and the
   last line timestamps how far the run got before wedging. *)
let write_beat oc t =
  let seq = Atomic.fetch_and_add t.beats 1 in
  let metrics = Registry.to_json (Registry.snapshot t.reg) in
  let line =
    Json.obj
      [
        ("seq", Json.Int seq);
        ("t_ns", Json.Int (Clock.now_ns () - t.start_ns));
        ("metrics", metrics);
      ]
  in
  output_string oc (Json.to_compact_string line);
  output_char oc '\n';
  flush oc

let slice_s = 0.02

let sampler_body oc t () =
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  let interval_ns = t.interval_ms * 1_000_000 in
  let rec run deadline =
    if Atomic.get t.stop_flag then write_beat oc t
    else if Clock.now_ns () >= deadline then begin
      write_beat oc t;
      run (deadline + interval_ns)
    end
    else begin
      (* Sleep in small slices so [stop] is honoured promptly even at
         long intervals. *)
      Unix.sleepf slice_s;
      run deadline
    end
  in
  run (Clock.now_ns () + interval_ns)

let start ?(interval_ms = 200) reg ~file =
  if interval_ms < 1 then invalid_arg "Heartbeat.start: interval_ms < 1";
  let oc = open_out file in
  let first_json = Registry.to_json (Registry.snapshot reg) in
  let t =
    {
      interval_ms;
      reg;
      start_ns = Clock.now_ns ();
      stop_flag = Atomic.make false;
      beats = Atomic.make 0;
      first_json;
      sampler = None;
    }
  in
  write_beat oc t;
  t.sampler <- Some (Domain.spawn (sampler_body oc t));
  t

let first t = t.first_json
let beats t = Atomic.get t.beats

let stop t =
  Atomic.set t.stop_flag true;
  (match t.sampler with
  | Some d ->
      t.sampler <- None;
      Domain.join d
  | None -> ());
  Atomic.get t.beats
