(** Minimal JSON tree and printer; see the interface. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let obj fields = Obj fields

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Floats must stay valid JSON: no [nan]/[infinity] literals, and a
   plain integral float prints with a decimal point so it reads back
   as a float. *)
let float_to_string f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

(* A hand-rolled writer rather than [Format] boxes: boxes indent
   relative to the column they open at, which for JSON produces deep
   hanging indents instead of the conventional flat two-space steps. *)
let rec write b indent = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      write_block b indent '[' ']' (fun b indent ->
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_string b ",\n";
              Buffer.add_string b (String.make indent ' ');
              write b indent x)
            xs)
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      write_block b indent '{' '}' (fun b indent ->
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_string b ",\n";
              Buffer.add_string b (String.make indent ' ');
              Buffer.add_char b '"';
              Buffer.add_string b (escape k);
              Buffer.add_string b "\": ";
              write b indent v)
            fields)

and write_block b indent opening closing body =
  Buffer.add_char b opening;
  Buffer.add_char b '\n';
  body b (indent + 2);
  Buffer.add_char b '\n';
  Buffer.add_string b (String.make indent ' ');
  Buffer.add_char b closing

let render j =
  let b = Buffer.create 1024 in
  write b 0 j;
  Buffer.contents b

let to_string j = render j ^ "\n"
let pp ppf j = Fmt.string ppf (render j)
