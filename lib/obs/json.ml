(** Minimal JSON tree and printer; see the interface. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let obj fields = Obj fields

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Floats must stay valid JSON: no [nan]/[infinity] literals, and a
   plain integral float prints with a decimal point so it reads back
   as a float. *)
let float_to_string f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

(* A hand-rolled writer rather than [Format] boxes: boxes indent
   relative to the column they open at, which for JSON produces deep
   hanging indents instead of the conventional flat two-space steps. *)
let rec write b indent = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      write_block b indent '[' ']' (fun b indent ->
          List.iteri
            (fun i x ->
              if i > 0 then Buffer.add_string b ",\n";
              Buffer.add_string b (String.make indent ' ');
              write b indent x)
            xs)
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      write_block b indent '{' '}' (fun b indent ->
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_string b ",\n";
              Buffer.add_string b (String.make indent ' ');
              Buffer.add_char b '"';
              Buffer.add_string b (escape k);
              Buffer.add_string b "\": ";
              write b indent v)
            fields)

and write_block b indent opening closing body =
  Buffer.add_char b opening;
  Buffer.add_char b '\n';
  body b (indent + 2);
  Buffer.add_char b '\n';
  Buffer.add_string b (String.make indent ' ');
  Buffer.add_char b closing

let render j =
  let b = Buffer.create 1024 in
  write b 0 j;
  Buffer.contents b

let to_string j = render j ^ "\n"
let pp ppf j = Fmt.string ppf (render j)

(* One line, no spaces beyond the [": "] separator — the JSONL shape
   the heartbeat file appends. *)
let rec write_compact b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write_compact b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write_compact b v)
        fields;
      Buffer.add_char b '}'

let to_compact_string j =
  let b = Buffer.create 256 in
  write_compact b j;
  Buffer.contents b

(* -- parsing ------------------------------------------------------------ *)

(* A recursive-descent parser for the subset this module prints (which
   is standard JSON): the inspect CLI and the bundle tests must read
   back what the bundle writer produced without a JSON dependency. *)

exception Parse_error of int * string

let parse_error pos msg = raise (Parse_error (pos, msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> parse_error !pos (Fmt.str "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_error !pos (Fmt.str "expected %s" word)
  in
  (* UTF-8-encode a \uXXXX escape (surrogate pairs unsupported; the
     writer never emits them). *)
  let add_uchar b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_error !pos "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then parse_error !pos "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code ->
                  pos := !pos + 4;
                  add_uchar b code;
                  go ()
              | None -> parse_error !pos (Fmt.str "bad \\u escape %S" hex))
          | _ -> parse_error !pos "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> parse_error start (Fmt.str "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> parse_error !pos "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec members acc =
            let kv = member () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> parse_error !pos "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some c -> (
        match c with
        | '0' .. '9' | '-' -> parse_number ()
        | _ -> parse_error !pos (Fmt.str "unexpected %C" c))
  in
  match parse_value () with
  | v ->
      skip_ws ();
      if !pos < n then Error (Fmt.str "trailing data at offset %d" !pos)
      else Ok v
  | exception Parse_error (p, msg) -> Error (Fmt.str "offset %d: %s" p msg)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
