(** Lineage taint domains with operation-cost counters.

    Lineage tracing is DIFT where the metadata is the set of input
    indices behind each value (paper §3.4).  Two representations are
    raced against each other: explicit sorted sets (the naive
    baseline, cost ∝ elements touched per operation) and roBDDs
    (cost ∝ unique BDD nodes visited).  Both expose the work they did
    so the cycle model can charge for it. *)

open Dift_core

module Int_set = Set.Make (Int)

(** Explicit-set lineage with element-touch accounting. *)
module Naive () : sig
  include Taint.DOMAIN with type t = Int_set.t

  val elements_touched : unit -> int
end = struct
  type t = Int_set.t

  let counter = ref 0
  let elements_touched () = !counter
  let name = "lineage-naive"
  let bottom = Int_set.empty
  let is_bottom = Int_set.is_empty
  let equal = Int_set.equal
  let as_bool = None

  let join a b =
    if Int_set.is_empty a then b
    else if Int_set.is_empty b then a
    else begin
      (* a union walks both sets *)
      counter := !counter + Int_set.cardinal a + Int_set.cardinal b;
      Int_set.union a b
    end

  let source ~input_index ~step:_ =
    counter := !counter + 1;
    Int_set.singleton input_index

  let at_write ~step:_ ~fname:_ ~pc:_ t = t
  let words t = max 1 (Int_set.cardinal t)
  let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (Int_set.elements t)
end

(** roBDD lineage sharing one manager per instantiation. *)
module Robdd () : sig
  include Taint.DOMAIN with type t = Dift_bdd.Bdd.t

  val manager : Dift_bdd.Bdd.manager
  val nodes_visited : unit -> int
end = struct
  module Bdd = Dift_bdd.Bdd

  type t = Bdd.t

  let manager = Bdd.manager ()
  let nodes_visited () = Bdd.op_nodes_visited manager
  let name = "lineage-robdd"
  let bottom = Bdd.zero
  let is_bottom = Bdd.is_empty
  let equal = Bdd.equal
  let as_bool = None
  let join a b = Bdd.union manager a b
  let source ~input_index ~step:_ = Bdd.singleton manager input_index
  let at_write ~step:_ ~fname:_ ~pc:_ t = t

  (* One BDD node is roughly four words (var, lo, hi, table slot); the
     *family* footprint is computed separately since nodes are
     shared. *)
  let words t = 4 * Bdd.node_count t
  let pp = Bdd.pp
end
