(** CPU-intensive kernels standing in for the paper's SPEC 2000
    workloads.

    Each kernel reads its data from the input stream (so DIFT sources
    fire), computes in registers and memory, and writes a checksum.
    Together they span the behaviours that drive tracing cost: tight
    arithmetic loops, data-dependent control, indexed memory traffic,
    strided shuffles, pointer chasing, and call-dense code (one
    activation per data block — the shape that exercises per-frame
    register files and the sharded runtime's frame striping). *)

val matmul : Workload.t
val qsort : Workload.t
val rle : Workload.t
val search : Workload.t
val hash : Workload.t
val crc : Workload.t
val sieve : Workload.t
val poly : Workload.t
val butterfly : Workload.t
val bfs : Workload.t
val treesum : Workload.t
val feistel : Workload.t

(** The kernel suite, in a stable order. *)
val all : Workload.t list

(** @raise Invalid_argument for unknown names. *)
val by_name : string -> Workload.t
