(** CPU-intensive kernels standing in for the paper's SPEC 2000
    workloads.

    Each kernel reads its data from the input stream (so DIFT sources
    fire), computes in registers and memory, and writes a checksum.
    Together they span the behaviours that drive tracing cost:
    tight arithmetic loops (matmul, poly, crc), data-dependent control
    (qsort, search), pointer-style indexed memory traffic (hash,
    sieve), and run-length patterns (rle). *)

open Dift_isa

let imm = Operand.imm
let reg = Operand.reg

(* Memory bases for the kernels' arrays (the global region is below
   [Memory.heap_base] = 1_000_000). *)
let base_a = 10_000
let base_b = 300_000
let base_c = 600_000

(* Read [count] words from input into memory starting at [base]. *)
let read_array b ~base ~count ~idx ~tmp ~addr =
  Builder.for_up b ~idx ~from_:(imm 0) ~below:count (fun () ->
      Builder.read b tmp;
      Builder.add b addr (imm base) (reg idx);
      Builder.store b (reg tmp) (reg addr) 0)

(* XOR-fold [count] words at [base] into [acc] and write it. *)
let write_checksum b ~base ~count ~idx ~tmp ~addr ~acc =
  Builder.movi b acc 0;
  Builder.for_up b ~idx ~from_:(imm 0) ~below:count (fun () ->
      Builder.add b addr (imm base) (reg idx);
      Builder.load b tmp (reg addr) 0;
      Builder.xor b acc (reg acc) (reg tmp));
  Builder.write b (reg acc)

(* -- matrix multiply ---------------------------------------------------- *)

let matmul =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n *)
        Builder.mul b Reg.r1 (reg Reg.r0) (reg Reg.r0);
        (* n^2 *)
        read_array b ~base:base_a ~count:(reg Reg.r1) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3;
        read_array b ~base:base_b ~count:(reg Reg.r1) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.for_up b ~idx:Reg.r11 ~from_:(imm 0) ~below:(reg Reg.r0)
              (fun () ->
                Builder.movi b Reg.r13 0;
                Builder.for_up b ~idx:Reg.r12 ~from_:(imm 0)
                  ~below:(reg Reg.r0) (fun () ->
                    (* a = A[i*n+k] *)
                    Builder.mul b Reg.r2 (reg Reg.r10) (reg Reg.r0);
                    Builder.add b Reg.r2 (reg Reg.r2) (reg Reg.r12);
                    Builder.add b Reg.r2 (reg Reg.r2) (imm base_a);
                    Builder.load b Reg.r4 (reg Reg.r2) 0;
                    (* b = B[k*n+j] *)
                    Builder.mul b Reg.r3 (reg Reg.r12) (reg Reg.r0);
                    Builder.add b Reg.r3 (reg Reg.r3) (reg Reg.r11);
                    Builder.add b Reg.r3 (reg Reg.r3) (imm base_b);
                    Builder.load b Reg.r5 (reg Reg.r3) 0;
                    Builder.mul b Reg.r6 (reg Reg.r4) (reg Reg.r5);
                    Builder.add b Reg.r13 (reg Reg.r13) (reg Reg.r6));
                (* C[i*n+j] = sum *)
                Builder.mul b Reg.r2 (reg Reg.r10) (reg Reg.r0);
                Builder.add b Reg.r2 (reg Reg.r2) (reg Reg.r11);
                Builder.add b Reg.r2 (reg Reg.r2) (imm base_c);
                Builder.store b (reg Reg.r13) (reg Reg.r2) 0));
        write_checksum b ~base:base_c ~count:(reg Reg.r1) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3 ~acc:Reg.r14;
        Builder.halt b)
  in
  Workload.make ~name:"matmul"
    ~description:"dense n*n matrix multiply, checksum of the product"
    ~program:(Program.make [ main ])
    ~input:(fun ~size ~seed ->
      let n = max 2 size in
      Array.append [| n |] (Workload.random_input (2 * n * n) seed))

(* -- quicksort ----------------------------------------------------------- *)

let qsort =
  (* qsort(lo, hi) over the array at base_a; recursive. *)
  let qsort_f =
    Builder.define ~name:"qsort" ~arity:2 (fun b ->
        (* r0 = lo, r1 = hi *)
        Builder.lt b Reg.r2 (reg Reg.r0) (reg Reg.r1);
        Builder.if_nz1 b (reg Reg.r2) (fun () ->
            (* partition: pivot = a[hi] *)
            Builder.add b Reg.r3 (imm base_a) (reg Reg.r1);
            Builder.load b Reg.r4 (reg Reg.r3) 0;
            (* pivot in r4 *)
            Builder.sub b Reg.r5 (reg Reg.r0) (imm 1);
            (* i in r5 *)
            Builder.for_up b ~idx:Reg.r6 ~from_:(reg Reg.r0)
              ~below:(reg Reg.r1) (fun () ->
                Builder.add b Reg.r7 (imm base_a) (reg Reg.r6);
                Builder.load b Reg.r8 (reg Reg.r7) 0;
                Builder.le b Reg.r9 (reg Reg.r8) (reg Reg.r4);
                Builder.if_nz1 b (reg Reg.r9) (fun () ->
                    Builder.add b Reg.r5 (reg Reg.r5) (imm 1);
                    (* swap a[i], a[j] *)
                    Builder.add b Reg.r10 (imm base_a) (reg Reg.r5);
                    Builder.load b Reg.r11 (reg Reg.r10) 0;
                    Builder.store b (reg Reg.r8) (reg Reg.r10) 0;
                    Builder.store b (reg Reg.r11) (reg Reg.r7) 0));
            (* swap a[i+1], a[hi] *)
            Builder.add b Reg.r5 (reg Reg.r5) (imm 1);
            Builder.add b Reg.r10 (imm base_a) (reg Reg.r5);
            Builder.load b Reg.r11 (reg Reg.r10) 0;
            Builder.load b Reg.r12 (reg Reg.r3) 0;
            Builder.store b (reg Reg.r12) (reg Reg.r10) 0;
            Builder.store b (reg Reg.r11) (reg Reg.r3) 0;
            (* recurse: qsort(lo, p-1); qsort(p+1, hi) *)
            Builder.mov b Reg.r13 (reg Reg.r0);
            Builder.mov b Reg.r14 (reg Reg.r1);
            Builder.mov b Reg.r15 (reg Reg.r5);
            Builder.mov b Reg.r0 (reg Reg.r13);
            Builder.sub b Reg.r1 (reg Reg.r15) (imm 1);
            Builder.call b "qsort" ~ret:None;
            Builder.add b Reg.r0 (reg Reg.r15) (imm 1);
            Builder.mov b Reg.r1 (reg Reg.r14);
            Builder.call b "qsort" ~ret:None);
        Builder.ret b None)
  in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n *)
        Builder.mov b Reg.r15 (reg Reg.r0);
        read_array b ~base:base_a ~count:(reg Reg.r0) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3;
        Builder.movi b Reg.r0 0;
        Builder.sub b Reg.r1 (reg Reg.r15) (imm 1);
        Builder.call b "qsort" ~ret:None;
        (* verify sortedness and fold a checksum *)
        Builder.movi b Reg.r14 0;
        Builder.sub b Reg.r4 (reg Reg.r15) (imm 1);
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r4)
          (fun () ->
            Builder.add b Reg.r2 (imm base_a) (reg Reg.r10);
            Builder.load b Reg.r5 (reg Reg.r2) 0;
            Builder.load b Reg.r6 (reg Reg.r2) 1;
            Builder.le b Reg.r7 (reg Reg.r5) (reg Reg.r6);
            Builder.check b (reg Reg.r7);
            Builder.add b Reg.r14 (reg Reg.r14) (reg Reg.r5));
        Builder.write b (reg Reg.r14);
        Builder.halt b)
  in
  Workload.make ~name:"qsort"
    ~description:"recursive quicksort of n random words, sortedness checked"
    ~program:(Program.make [ main; qsort_f ])
    ~input:(fun ~size ~seed ->
      let n = max 2 size in
      Array.append [| n |] (Workload.random_input n seed))

(* -- run-length encoding ------------------------------------------------- *)

let rle =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n *)
        read_array b ~base:base_a ~count:(reg Reg.r0) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3;
        (* encode runs of equal values into (value, length) pairs at
           base_b; r5 = output cursor *)
        Builder.movi b Reg.r5 0;
        Builder.movi b Reg.r6 (-1);
        (* current value *)
        Builder.movi b Reg.r7 0;
        (* current run length *)
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.add b Reg.r2 (imm base_a) (reg Reg.r10);
            Builder.load b Reg.r3 (reg Reg.r2) 0;
            Builder.eq b Reg.r4 (reg Reg.r3) (reg Reg.r6);
            Builder.if_nz b (reg Reg.r4)
              ~then_:(fun () ->
                Builder.add b Reg.r7 (reg Reg.r7) (imm 1))
              ~else_:(fun () ->
                (* flush previous run *)
                Builder.gt b Reg.r8 (reg Reg.r7) (imm 0);
                Builder.if_nz1 b (reg Reg.r8) (fun () ->
                    Builder.add b Reg.r9 (imm base_b) (reg Reg.r5);
                    Builder.store b (reg Reg.r6) (reg Reg.r9) 0;
                    Builder.store b (reg Reg.r7) (reg Reg.r9) 1;
                    Builder.add b Reg.r5 (reg Reg.r5) (imm 2));
                Builder.mov b Reg.r6 (reg Reg.r3);
                Builder.movi b Reg.r7 1));
        (* flush the last run *)
        Builder.gt b Reg.r8 (reg Reg.r7) (imm 0);
        Builder.if_nz1 b (reg Reg.r8) (fun () ->
            Builder.add b Reg.r9 (imm base_b) (reg Reg.r5);
            Builder.store b (reg Reg.r6) (reg Reg.r9) 0;
            Builder.store b (reg Reg.r7) (reg Reg.r9) 1;
            Builder.add b Reg.r5 (reg Reg.r5) (imm 2));
        Builder.write b (reg Reg.r5);
        write_checksum b ~base:base_b ~count:(reg Reg.r5) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3 ~acc:Reg.r14;
        Builder.halt b)
  in
  Workload.make ~name:"rle"
    ~description:"run-length encoding of a small-alphabet stream"
    ~program:(Program.make [ main ])
    ~input:(fun ~size ~seed ->
      let n = max 4 size in
      Array.append [| n |] (Workload.random_input ~bound:4 n seed))

(* -- naive string search ------------------------------------------------- *)

let search =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* m: pattern length *)
        read_array b ~base:base_b ~count:(reg Reg.r0) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3;
        Builder.read b Reg.r1;
        (* n: text length *)
        read_array b ~base:base_a ~count:(reg Reg.r1) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3;
        Builder.movi b Reg.r14 0;
        (* match count *)
        Builder.sub b Reg.r4 (reg Reg.r1) (reg Reg.r0);
        Builder.add b Reg.r4 (reg Reg.r4) (imm 1);
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r4)
          (fun () ->
            Builder.movi b Reg.r5 1;
            (* matches so far *)
            Builder.for_up b ~idx:Reg.r11 ~from_:(imm 0) ~below:(reg Reg.r0)
              (fun () ->
                Builder.add b Reg.r6 (reg Reg.r10) (reg Reg.r11);
                Builder.add b Reg.r6 (reg Reg.r6) (imm base_a);
                Builder.load b Reg.r7 (reg Reg.r6) 0;
                Builder.add b Reg.r8 (imm base_b) (reg Reg.r11);
                Builder.load b Reg.r9 (reg Reg.r8) 0;
                Builder.eq b Reg.r12 (reg Reg.r7) (reg Reg.r9);
                Builder.and_ b Reg.r5 (reg Reg.r5) (reg Reg.r12));
            Builder.add b Reg.r14 (reg Reg.r14) (reg Reg.r5));
        Builder.write b (reg Reg.r14);
        Builder.halt b)
  in
  Workload.make ~name:"search"
    ~description:"naive pattern search counting matches in a random text"
    ~program:(Program.make [ main ])
    ~input:(fun ~size ~seed ->
      let n = max 8 size in
      let m = 3 in
      Array.concat
        [
          [| m |];
          Workload.random_input ~bound:3 m seed;
          [| n |];
          Workload.random_input ~bound:3 n (seed + 1);
        ])

(* -- open-addressing hash table ------------------------------------------ *)

let hash_table_size = 1024

let hash =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n keys *)
        Builder.movi b Reg.r14 0;
        (* collision count *)
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.read b Reg.r1;
            (* key *)
            (* slot = (key * 2654435761) mod size, cheaply *)
            Builder.mul b Reg.r2 (reg Reg.r1) (imm 2654435761);
            Builder.rem b Reg.r2 (reg Reg.r2) (imm hash_table_size);
            (* linear probing: table stores key+1 (0 = empty) *)
            let probe = Builder.fresh_label b "probe" in
            let done_ = Builder.fresh_label b "insert_done" in
            Builder.label b probe;
            Builder.add b Reg.r3 (imm base_c) (reg Reg.r2);
            Builder.load b Reg.r4 (reg Reg.r3) 0;
            Builder.eq b Reg.r5 (reg Reg.r4) (imm 0);
            Builder.if_nz1 b (reg Reg.r5) (fun () ->
                Builder.add b Reg.r6 (reg Reg.r1) (imm 1);
                Builder.store b (reg Reg.r6) (reg Reg.r3) 0;
                Builder.jmp b done_);
            (* occupied: collision, advance *)
            Builder.add b Reg.r14 (reg Reg.r14) (imm 1);
            Builder.add b Reg.r2 (reg Reg.r2) (imm 1);
            Builder.rem b Reg.r2 (reg Reg.r2) (imm hash_table_size);
            Builder.jmp b probe;
            Builder.label b done_);
        Builder.write b (reg Reg.r14);
        Builder.halt b)
  in
  Workload.make ~name:"hash"
    ~description:"open-addressing hash inserts, counting probe collisions"
    ~program:(Program.make [ main ])
    ~input:(fun ~size ~seed ->
      let n = max 4 (min size (hash_table_size / 2)) in
      Array.append [| n |] (Workload.random_input ~bound:1_000_000 n seed))

(* -- rolling checksum (crc-like) ------------------------------------------ *)

let crc =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n *)
        Builder.movi b Reg.r14 65521;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.read b Reg.r1;
            Builder.shl b Reg.r2 (reg Reg.r14) (imm 1);
            Builder.shr b Reg.r3 (reg Reg.r14) (imm 15);
            Builder.xor b Reg.r4 (reg Reg.r2) (reg Reg.r3);
            Builder.xor b Reg.r4 (reg Reg.r4) (reg Reg.r1);
            Builder.and_ b Reg.r14 (reg Reg.r4) (imm 0xFFFF));
        Builder.write b (reg Reg.r14);
        Builder.halt b)
  in
  Workload.make ~name:"crc"
    ~description:"rolling 16-bit checksum over the input stream"
    ~program:(Program.make [ main ])
    ~input:(fun ~size ~seed ->
      let n = max 4 size in
      Array.append [| n |] (Workload.random_input ~bound:65536 n seed))

(* -- sieve of Eratosthenes ------------------------------------------------ *)

let sieve =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n *)
        (* flags at base_a, initially 0 = prime *)
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 2) ~below:(reg Reg.r0)
          (fun () ->
            Builder.add b Reg.r2 (imm base_a) (reg Reg.r10);
            Builder.load b Reg.r3 (reg Reg.r2) 0;
            Builder.if_nz b (reg Reg.r3)
              ~then_:(fun () -> Builder.nop b)
              ~else_:(fun () ->
                (* mark multiples *)
                Builder.add b Reg.r4 (reg Reg.r10) (reg Reg.r10);
                let mark = Builder.fresh_label b "mark" in
                let stop = Builder.fresh_label b "mark_done" in
                Builder.label b mark;
                Builder.lt b Reg.r5 (reg Reg.r4) (reg Reg.r0);
                Builder.br_z b (reg Reg.r5) stop;
                Builder.add b Reg.r6 (imm base_a) (reg Reg.r4);
                Builder.store b (imm 1) (reg Reg.r6) 0;
                Builder.add b Reg.r4 (reg Reg.r4) (reg Reg.r10);
                Builder.jmp b mark;
                Builder.label b stop));
        (* count primes *)
        Builder.movi b Reg.r14 0;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 2) ~below:(reg Reg.r0)
          (fun () ->
            Builder.add b Reg.r2 (imm base_a) (reg Reg.r10);
            Builder.load b Reg.r3 (reg Reg.r2) 0;
            Builder.eq b Reg.r4 (reg Reg.r3) (imm 0);
            Builder.add b Reg.r14 (reg Reg.r14) (reg Reg.r4));
        Builder.write b (reg Reg.r14);
        Builder.halt b)
  in
  Workload.make ~name:"sieve"
    ~description:"sieve of Eratosthenes counting primes below n"
    ~program:(Program.make [ main ])
    ~input:(fun ~size ~seed:_ -> [| max 10 size |])

(* -- polynomial evaluation ------------------------------------------------ *)

let poly =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* degree+1 coefficient count *)
        read_array b ~base:base_b ~count:(reg Reg.r0) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3;
        Builder.read b Reg.r1;
        (* m evaluation points *)
        Builder.movi b Reg.r14 0;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r1)
          (fun () ->
            Builder.read b Reg.r4;
            (* x *)
            Builder.movi b Reg.r5 0;
            (* acc *)
            Builder.for_up b ~idx:Reg.r11 ~from_:(imm 0) ~below:(reg Reg.r0)
              (fun () ->
                Builder.mul b Reg.r5 (reg Reg.r5) (reg Reg.r4);
                Builder.add b Reg.r6 (imm base_b) (reg Reg.r11);
                Builder.load b Reg.r7 (reg Reg.r6) 0;
                Builder.add b Reg.r5 (reg Reg.r5) (reg Reg.r7);
                Builder.rem b Reg.r5 (reg Reg.r5) (imm 1_000_003));
            Builder.xor b Reg.r14 (reg Reg.r14) (reg Reg.r5));
        Builder.write b (reg Reg.r14);
        Builder.halt b)
  in
  Workload.make ~name:"poly"
    ~description:"Horner evaluation of a polynomial at m points (mod p)"
    ~program:(Program.make [ main ])
    ~input:(fun ~size ~seed ->
      let deg = 8 in
      let m = max 2 size in
      Array.concat
        [
          [| deg |];
          Workload.random_input ~bound:100 deg seed;
          [| m |];
          Workload.random_input ~bound:1000 m (seed + 1);
        ])

(* -- butterfly (FFT-style) data shuffling ---------------------------------- *)

(* log2(n) passes of butterfly combine steps over a power-of-two-sized
   array: the strided access pattern of FFT/bitonic kernels, which
   stresses O2's hot-path learning with multiple distinct hot loops. *)
let butterfly =
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* log2 n *)
        Builder.movi b Reg.r1 1;
        Builder.shl b Reg.r1 (reg Reg.r1) (reg Reg.r0);
        (* n = 1 << log2n *)
        read_array b ~base:base_a ~count:(reg Reg.r1) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3;
        (* for each pass p: stride = 1 << p *)
        Builder.for_up b ~idx:Reg.r11 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.movi b Reg.r4 1;
            Builder.shl b Reg.r4 (reg Reg.r4) (reg Reg.r11);
            (* stride *)
            Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r1)
              (fun () ->
                (* partner = i xor stride; combine only when i < partner *)
                Builder.xor b Reg.r5 (reg Reg.r10) (reg Reg.r4);
                Builder.lt b Reg.r6 (reg Reg.r10) (reg Reg.r5);
                Builder.if_nz1 b (reg Reg.r6) (fun () ->
                    Builder.add b Reg.r7 (imm base_a) (reg Reg.r10);
                    Builder.add b Reg.r8 (imm base_a) (reg Reg.r5);
                    Builder.load b Reg.r12 (reg Reg.r7) 0;
                    Builder.load b Reg.r13 (reg Reg.r8) 0;
                    Builder.add b Reg.r14 (reg Reg.r12) (reg Reg.r13);
                    Builder.sub b Reg.r15 (reg Reg.r12) (reg Reg.r13);
                    Builder.store b (reg Reg.r14) (reg Reg.r7) 0;
                    Builder.store b (reg Reg.r15) (reg Reg.r8) 0)));
        write_checksum b ~base:base_a ~count:(reg Reg.r1) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3 ~acc:Reg.r14;
        Builder.halt b)
  in
  Workload.make ~name:"butterfly"
    ~description:"log n butterfly combine passes (FFT-style strides)"
    ~program:(Program.make [ main ])
    ~input:(fun ~size ~seed ->
      (* size is interpreted as log2 of the array length, clamped *)
      let log2n = max 2 (min 10 size) in
      Array.append [| log2n |]
        (Workload.random_input ~bound:1000 (1 lsl log2n) seed))

(* -- breadth-first search ---------------------------------------------------- *)

(* BFS over a random graph in adjacency-list form: data-dependent,
   pointer-chasing control flow — the opposite end of the spectrum
   from the dense loops.  Input encodes: n, then n row degrees, then
   the concatenated adjacency lists.  Output: number of reachable
   nodes and the sum of BFS levels. *)
let bfs =
  let adj_idx = 700_000 (* row start offsets *)
  and adj = 710_000 (* edges *)
  and level = 750_000 (* per-node level, -1 = unvisited *)
  and queue = 760_000 in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n *)
        (* read degrees, building row offsets; r2 = running offset *)
        Builder.movi b Reg.r2 0;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.add b Reg.r3 (imm adj_idx) (reg Reg.r10);
            Builder.store b (reg Reg.r2) (reg Reg.r3) 0;
            Builder.read b Reg.r4;
            Builder.add b Reg.r2 (reg Reg.r2) (reg Reg.r4));
        Builder.add b Reg.r3 (imm adj_idx) (reg Reg.r0);
        Builder.store b (reg Reg.r2) (reg Reg.r3) 0;
        (* sentinel offset *)
        (* read the edges *)
        read_array b ~base:adj ~count:(reg Reg.r2) ~idx:Reg.r10 ~tmp:Reg.r3
          ~addr:Reg.r4;
        (* levels <- -1 *)
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.add b Reg.r3 (imm level) (reg Reg.r10);
            Builder.store b (imm (-1)) (reg Reg.r3) 0);
        (* BFS from node 0: r5 = head, r6 = tail *)
        Builder.movi b Reg.r5 0;
        Builder.movi b Reg.r6 0;
        Builder.store b (imm 0) (imm queue) 0;
        Builder.movi b Reg.r6 1;
        Builder.store b (imm 0) (imm level) 0;
        let loop = Builder.fresh_label b "bfs_loop" in
        let done_ = Builder.fresh_label b "bfs_done" in
        Builder.label b loop;
        Builder.lt b Reg.r7 (reg Reg.r5) (reg Reg.r6);
        Builder.br_z b (reg Reg.r7) done_;
        (* u = queue[head++] *)
        Builder.add b Reg.r8 (imm queue) (reg Reg.r5);
        Builder.load b Reg.r9 (reg Reg.r8) 0;
        Builder.add b Reg.r5 (reg Reg.r5) (imm 1);
        (* u's level *)
        Builder.add b Reg.r12 (imm level) (reg Reg.r9);
        Builder.load b Reg.r13 (reg Reg.r12) 0;
        (* scan u's adjacency row *)
        Builder.add b Reg.r14 (imm adj_idx) (reg Reg.r9);
        Builder.load b Reg.r15 (reg Reg.r14) 0;
        (* row start *)
        Builder.load b Reg.r16 (reg Reg.r14) 1;
        (* row end *)
        Builder.for_up b ~idx:Reg.r17 ~from_:(reg Reg.r15)
          ~below:(reg Reg.r16) (fun () ->
            Builder.add b Reg.r18 (imm adj) (reg Reg.r17);
            Builder.load b Reg.r19 (reg Reg.r18) 0;
            (* v *)
            Builder.add b Reg.r20 (imm level) (reg Reg.r19);
            Builder.load b Reg.r21 (reg Reg.r20) 0;
            Builder.lt b Reg.r30 (reg Reg.r21) (imm 0);
            Builder.if_nz1 b (reg Reg.r30) (fun () ->
                Builder.add b Reg.r31 (reg Reg.r13) (imm 1);
                Builder.store b (reg Reg.r31) (reg Reg.r20) 0;
                Builder.add b Reg.r31 (imm queue) (reg Reg.r6);
                Builder.store b (reg Reg.r19) (reg Reg.r31) 0;
                Builder.add b Reg.r6 (reg Reg.r6) (imm 1)));
        Builder.jmp b loop;
        Builder.label b done_;
        (* reachable count and level sum *)
        Builder.movi b Reg.r12 0;
        Builder.movi b Reg.r13 0;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r0)
          (fun () ->
            Builder.add b Reg.r3 (imm level) (reg Reg.r10);
            Builder.load b Reg.r4 (reg Reg.r3) 0;
            Builder.ge b Reg.r7 (reg Reg.r4) (imm 0);
            Builder.add b Reg.r12 (reg Reg.r12) (reg Reg.r7);
            Builder.if_nz1 b (reg Reg.r7) (fun () ->
                Builder.add b Reg.r13 (reg Reg.r13) (reg Reg.r4)));
        Builder.write b (reg Reg.r12);
        Builder.write b (reg Reg.r13);
        Builder.halt b)
  in
  Workload.make ~name:"bfs"
    ~description:"breadth-first search over a random adjacency list"
    ~program:(Program.make [ main ])
    ~input:(fun ~size ~seed ->
      let n = max 4 size in
      let rng = Random.State.make [| seed; n; 77 |] in
      let degrees = Array.init n (fun _ -> Random.State.int rng 4) in
      let edges =
        Array.concat
          (Array.to_list
             (Array.map
                (fun d -> Array.init d (fun _ -> Random.State.int rng n))
                degrees))
      in
      Array.concat [ [| n |]; degrees; edges ])

(* -- tree-structured hash reduction -------------------------------------- *)

(* Divide-and-conquer over the input array: internal nodes split the
   segment and combine child results, leaves hash their elements in a
   tight register loop.  One activation per segment gives the
   call-dense profile of real code that the fused single-frame loops
   above lack — and, since the VM assigns every activation a fresh
   register frame, it is the shape that spreads work across the
   sharded runtime's frame-striped shadow partition. *)
let treesum =
  let leaf = 8 in
  let tsum =
    Builder.define ~name:"treesum" ~arity:2 (fun b ->
        (* r0 = lo, r1 = hi (exclusive) *)
        Builder.sub b Reg.r2 (reg Reg.r1) (reg Reg.r0);
        Builder.le b Reg.r3 (reg Reg.r2) (imm leaf);
        Builder.if_nz b (reg Reg.r3)
          ~then_:(fun () ->
            Builder.movi b Reg.r4 0;
            Builder.for_up b ~idx:Reg.r5 ~from_:(reg Reg.r0)
              ~below:(reg Reg.r1) (fun () ->
                Builder.add b Reg.r6 (imm base_a) (reg Reg.r5);
                Builder.load b Reg.r7 (reg Reg.r6) 0;
                (* avalanche the element (two mix rounds), then fold *)
                Builder.mul b Reg.r8 (reg Reg.r7) (imm 0x9e37);
                Builder.shr b Reg.r9 (reg Reg.r8) (imm 7);
                Builder.xor b Reg.r8 (reg Reg.r8) (reg Reg.r9);
                Builder.shl b Reg.r9 (reg Reg.r8) (imm 3);
                Builder.add b Reg.r8 (reg Reg.r8) (reg Reg.r9);
                Builder.mul b Reg.r8 (reg Reg.r8) (imm 0x85eb);
                Builder.shr b Reg.r9 (reg Reg.r8) (imm 11);
                Builder.xor b Reg.r8 (reg Reg.r8) (reg Reg.r9);
                Builder.shl b Reg.r9 (reg Reg.r8) (imm 5);
                Builder.add b Reg.r8 (reg Reg.r8) (reg Reg.r9);
                Builder.xor b Reg.r4 (reg Reg.r4) (reg Reg.r8);
                Builder.add b Reg.r4 (reg Reg.r4) (reg Reg.r7));
            Builder.ret b (Some (reg Reg.r4)))
          ~else_:(fun () ->
            (* mid = lo + (hi - lo) / 2 *)
            Builder.shr b Reg.r4 (reg Reg.r2) (imm 1);
            Builder.add b Reg.r4 (reg Reg.r0) (reg Reg.r4);
            Builder.mov b Reg.r11 (reg Reg.r1);
            Builder.mov b Reg.r12 (reg Reg.r4);
            Builder.mov b Reg.r1 (reg Reg.r12);
            Builder.call b "treesum" ~ret:(Some Reg.r13);
            Builder.mov b Reg.r0 (reg Reg.r12);
            Builder.mov b Reg.r1 (reg Reg.r11);
            Builder.call b "treesum" ~ret:(Some Reg.r14);
            Builder.mul b Reg.r2 (reg Reg.r13) (imm 31);
            Builder.add b Reg.r2 (reg Reg.r2) (reg Reg.r14);
            Builder.xor b Reg.r2 (reg Reg.r2) (reg Reg.r13);
            Builder.ret b (Some (reg Reg.r2))))
  in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n *)
        Builder.mov b Reg.r15 (reg Reg.r0);
        read_array b ~base:base_a ~count:(reg Reg.r15) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3;
        Builder.movi b Reg.r0 0;
        Builder.mov b Reg.r1 (reg Reg.r15);
        Builder.call b "treesum" ~ret:(Some Reg.r14);
        Builder.write b (reg Reg.r14);
        Builder.halt b)
  in
  Workload.make ~name:"treesum"
    ~description:
      "divide-and-conquer hash reduction, one activation per segment"
    ~program:(Program.make [ main; tsum ])
    ~input:(fun ~size ~seed ->
      let n = max 2 size in
      Array.append [| n |] (Workload.random_input n seed))

(* -- per-block Feistel mixing -------------------------------------------- *)

(* Every input word is pushed through a called round function — the
   other call-dense shape (one short-lived activation per data block,
   all of its work in registers).  The round structure is a textbook
   Feistel network, so the output depends on every bit of the input
   word and the checksum stays taint-reachable. *)
let feistel =
  let rounds = 16 in
  let mix =
    Builder.define ~name:"mix" ~arity:2 (fun b ->
        (* r0 = left half (data), r1 = right half (block index) *)
        for _ = 1 to rounds do
          Builder.shl b Reg.r2 (reg Reg.r0) (imm 4);
          Builder.add b Reg.r2 (reg Reg.r2) (reg Reg.r1);
          Builder.shr b Reg.r3 (reg Reg.r0) (imm 5);
          Builder.add b Reg.r3 (reg Reg.r3) (imm 0x7af3);
          Builder.xor b Reg.r2 (reg Reg.r2) (reg Reg.r3);
          Builder.add b Reg.r4 (reg Reg.r0) (reg Reg.r2);
          Builder.mov b Reg.r0 (reg Reg.r1);
          Builder.mov b Reg.r1 (reg Reg.r4)
        done;
        Builder.add b Reg.r0 (reg Reg.r0) (reg Reg.r1);
        Builder.ret b (Some (reg Reg.r0)))
  in
  let main =
    Builder.define ~name:"main" ~arity:0 (fun b ->
        Builder.read b Reg.r0;
        (* n *)
        Builder.mov b Reg.r15 (reg Reg.r0);
        read_array b ~base:base_a ~count:(reg Reg.r15) ~idx:Reg.r10
          ~tmp:Reg.r2 ~addr:Reg.r3;
        Builder.movi b Reg.r14 0;
        Builder.for_up b ~idx:Reg.r10 ~from_:(imm 0) ~below:(reg Reg.r15)
          (fun () ->
            Builder.add b Reg.r2 (imm base_a) (reg Reg.r10);
            Builder.load b Reg.r0 (reg Reg.r2) 0;
            Builder.mov b Reg.r1 (reg Reg.r10);
            Builder.call b "mix" ~ret:(Some Reg.r3);
            Builder.add b Reg.r2 (imm base_b) (reg Reg.r10);
            Builder.store b (reg Reg.r3) (reg Reg.r2) 0;
            Builder.xor b Reg.r14 (reg Reg.r14) (reg Reg.r3));
        Builder.write b (reg Reg.r14);
        Builder.halt b)
  in
  Workload.make ~name:"feistel"
    ~description:
      "per-block Feistel mixing, one round-function activation per word"
    ~program:(Program.make [ main; mix ])
    ~input:(fun ~size ~seed ->
      let n = max 2 size in
      Array.append [| n |] (Workload.random_input n seed))

(** The kernel suite, in a stable order. *)
let all =
  [
    matmul; qsort; rle; search; hash; crc; sieve; poly; butterfly; bfs;
    treesum; feistel;
  ]

let by_name name =
  match List.find_opt (fun w -> w.Workload.name = name) all with
  | Some w -> w
  | None -> invalid_arg (Fmt.str "Spec_like.by_name: %s" name)
